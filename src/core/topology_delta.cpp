#include "core/topology_delta.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mrwsn::core {

namespace {

/// Weakest received power at which ANY rate of the table decodes with zero
/// interference: a pair closer than the corresponding range has a link.
double decode_threshold(const phy::PhyModel& phy) {
  double threshold = 0.0;
  for (const phy::Rate& rate : phy.rates().rates()) {
    const double need =
        std::max(rate.rx_sensitivity_watt, rate.sinr_min_linear * phy.noise_watt());
    if (threshold == 0.0 || need < threshold) threshold = need;
  }
  MRWSN_REQUIRE(threshold > 0.0, "rate table admits links at any distance");
  return threshold;
}

std::vector<geom::Point> live_positions(const net::Network& network) {
  std::vector<geom::Point> points;
  points.reserve(network.num_nodes());
  for (const net::Node& node : network.nodes()) points.push_back(node.position);
  return points;
}

}  // namespace

TopologyDelta::TopologyDelta(net::Network* network,
                             PhysicalInterferenceModel* model)
    : network_(network),
      model_(model),
      // Cell size = nominal-power decode range: radius queries touch ~9
      // cells until power churn inflates the radius.
      grid_(network->phy().path_loss().range_for_power(
          network->phy().tx_power_watt(), decode_threshold(network->phy()))),
      decode_threshold_watt_(decode_threshold(network->phy())) {
  MRWSN_REQUIRE(network_ != nullptr && model_ != nullptr,
                "topology delta needs a network and its model");
  MRWSN_REQUIRE(&model_->network() == network_,
                "the model must be built over the mutated network");
  MRWSN_REQUIRE(!network_->has_shadowing(),
                "incremental repair does not support shadowed networks "
                "(unbounded gains defeat grid-based link discovery)");
  grid_.build(live_positions(*network_));
  max_power_watt_ = network_->phy().tx_power_watt();
  for (net::NodeId id = 0; id < network_->num_nodes(); ++id) {
    max_power_watt_ = std::max(max_power_watt_, network_->node_tx_power(id));
    if (!network_->node(id).alive) grid_.remove(id);
  }
}

double TopologyDelta::discovery_radius() const {
  return network_->phy().path_loss().range_for_power(max_power_watt_,
                                                     decode_threshold_watt_);
}

void TopologyDelta::refresh_incident(net::NodeId node, ModelRepair* repair) {
  // Copy the id lists: refresh_link may append to them (new links), and we
  // only want the pre-existing incident set here.
  const std::vector<net::LinkId> out = network_->links_from(node);
  const std::vector<net::LinkId> in = network_->links_to(node);
  for (const net::LinkId id : out) {
    const net::Link& link = network_->link(id);
    network_->refresh_link(link.tx, link.rx);
    repair->links.push_back(id);
  }
  for (const net::LinkId id : in) {
    const net::Link& link = network_->link(id);
    network_->refresh_link(link.tx, link.rx);
    repair->links.push_back(id);
  }
}

void TopologyDelta::discover_new_links(net::NodeId node, ModelRepair* repair) {
  std::vector<std::size_t> neighbors;
  grid_.neighbors_within(network_->node(node).position, discovery_radius(),
                         &neighbors);
  for (const std::size_t other : neighbors) {
    if (other == node) continue;
    if (!network_->find_link(node, other)) {
      if (const auto refresh = network_->refresh_link(node, other))
        repair->links.push_back(refresh->id);
    }
    if (!network_->find_link(other, node)) {
      if (const auto refresh = network_->refresh_link(other, node))
        repair->links.push_back(refresh->id);
    }
  }
}

ModelRepair TopologyDelta::move_node(net::NodeId node, geom::Point position) {
  MRWSN_REQUIRE(network_->node(node).alive, "cannot move a departed node");
  network_->set_position(node, position);
  grid_.move(node, position);

  ModelRepair repair;
  repair.nodes.push_back(node);
  // Every incident link changed (length, and the power its endpoints
  // deliver to every other link's receiver); pairs that newly came into
  // range gain a link. Pairs that fell OUT of range are incident links, so
  // the refresh pass kills them — no old-position query needed.
  refresh_incident(node, &repair);
  discover_new_links(node, &repair);
  repair.normalize();
  model_->repair(repair);
  return repair;
}

ModelRepair TopologyDelta::set_power(net::NodeId node, double tx_power_watt) {
  MRWSN_REQUIRE(network_->node(node).alive, "cannot re-power a departed node");
  network_->set_node_tx_power(node, tx_power_watt);
  max_power_watt_ = std::max(max_power_watt_, tx_power_watt);

  ModelRepair repair;
  repair.nodes.push_back(node);
  // Power of `node` enters the SINR math only as "power delivered BY
  // node" — signal of its outgoing links and interference it casts. Links
  // into the node keep their signal and interference sums, but any link
  // pair involving an outgoing link is affected.
  const std::vector<net::LinkId> out = network_->links_from(node);
  for (const net::LinkId id : out) {
    const net::Link& link = network_->link(id);
    network_->refresh_link(link.tx, link.rx);
    repair.links.push_back(id);
  }
  // A power increase can pull new receivers into decode range (a decrease
  // only kills existing links, which the refresh above already handled).
  std::vector<std::size_t> neighbors;
  grid_.neighbors_within(network_->node(node).position, discovery_radius(),
                         &neighbors);
  for (const std::size_t other : neighbors) {
    if (other == node || network_->find_link(node, other)) continue;
    if (const auto refresh = network_->refresh_link(node, other))
      repair.links.push_back(refresh->id);
  }
  repair.normalize();
  model_->repair(repair);
  return repair;
}

ModelRepair TopologyDelta::set_rate(net::LinkId link, phy::RateIndex cap) {
  network_->set_rate_cap(link, cap);
  ModelRepair repair;
  // No received power changed — only the usable couple set of this link.
  repair.links.push_back(link);
  repair.normalize();
  model_->repair(repair);
  return repair;
}

ModelRepair TopologyDelta::add_node(geom::Point position) {
  const net::NodeId node = network_->add_node(position);
  grid_.insert(node, position);

  ModelRepair repair;
  repair.nodes.push_back(node);
  repair.nodes_added = true;
  discover_new_links(node, &repair);
  repair.normalize();
  model_->repair(repair);
  return repair;
}

ModelRepair TopologyDelta::remove_node(net::NodeId node) {
  MRWSN_REQUIRE(network_->node(node).alive, "node already departed");
  network_->set_node_alive(node, false);
  grid_.remove(node);

  ModelRepair repair;
  repair.nodes.push_back(node);
  refresh_incident(node, &repair);
  repair.normalize();
  model_->repair(repair);
  return repair;
}

}  // namespace mrwsn::core
