#pragma once

#include <span>
#include <vector>

#include "core/interference.hpp"
#include "net/network.hpp"

namespace mrwsn::core {

/// Everything the Section-4 distributed estimators see about one path:
/// per-link effective rates, per-link idle-time shares (Eq. 10's
/// min-of-endpoints), and the *local interference cliques* — maximal runs
/// of consecutive path links that pairwise interfere (found with the
/// approach of reference [1], as the paper prescribes).
///
/// These estimators deliberately use only locally observable quantities;
/// comparing them against the Eq. 6 LP truth is exactly the paper's Fig. 4
/// experiment.
struct PathEstimateInput {
  std::vector<double> rate_mbps;   ///< r_i, per path link
  std::vector<double> idle_ratio;  ///< λ_i, per path link
  /// Local maximal cliques; each entry lists indices into the path links.
  std::vector<std::vector<std::size_t>> cliques;
};

/// Build the estimator input from abstract per-link rates and idle ratios.
/// Local cliques are derived from `model.interferes` at each link's
/// maximum lone rate.
PathEstimateInput make_path_estimate_input(const InterferenceModel& model,
                                           std::span<const net::LinkId> path_links,
                                           std::span<const double> link_rate_mbps,
                                           std::span<const double> link_idle);

/// Convenience overload for a concrete network: r_i is the link's maximum
/// lone rate, λ_i = min(idle of transmitter, idle of receiver) per Eq. 10,
/// with `node_idle` indexed by node id.
PathEstimateInput make_path_estimate_input(const net::Network& network,
                                           const InterferenceModel& model,
                                           std::span<const net::LinkId> path_links,
                                           std::span<const double> node_idle);

/// Eq. 10 — "bottleneck node bandwidth": f <= min_i λ_i · r_i.
double estimate_bottleneck_node(const PathEstimateInput& input);

/// Eq. 11 — "clique constraint": f <= min_C 1 / Σ_{i∈C} 1/r_i.
/// Ignores background traffic entirely.
double estimate_clique_constraint(const PathEstimateInput& input);

/// Eq. 12 — "min of the above two", evaluated per clique as the paper
/// writes it: f <= min_C min{ 1/Σ 1/r_i , λ_i r_i (i ∈ C) }.
double estimate_min_clique_bottleneck(const PathEstimateInput& input);

/// Eq. 13 — "conservative clique constraint": within each clique order
/// idle shares ascending (λ_(1) <= ... <= λ_(|C|)); then
/// f <= min_i λ_(i) / Σ_{j<=i} 1/r_(j). The paper's best estimator.
double estimate_conservative_clique(const PathEstimateInput& input);

/// Eq. 15 — "expected clique transmission time":
/// f <= 1 / max_C Σ_{i∈C} 1/(λ_i r_i). Returns 0 when some clique member
/// has zero idle time.
double estimate_expected_clique_time(const PathEstimateInput& input);

/// Eq. 14's T*_e2e = Σ_i 1/(λ_i r_i) — the "average-e2eD" routing metric
/// value of the whole path (infinite when some λ_i is zero).
double average_e2e_delay(const PathEstimateInput& input);

/// Σ_i 1/r_i — the "e2eTD" (end-to-end transmission delay) metric of [1].
double e2e_transmission_delay(const PathEstimateInput& input);

}  // namespace mrwsn::core
