#include "phy/rate.hpp"

#include "util/error.hpp"

namespace mrwsn::phy {

RateTable::RateTable(std::vector<Rate> rates) : rates_(std::move(rates)) {
  MRWSN_REQUIRE(!rates_.empty(), "a rate table needs at least one rate");
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    MRWSN_REQUIRE(rates_[i].mbps > 0.0, "rates must be positive");
    MRWSN_REQUIRE(rates_[i].sinr_min_linear > 0.0, "SINR thresholds must be positive");
    MRWSN_REQUIRE(rates_[i].rx_sensitivity_watt > 0.0, "sensitivities must be positive");
    if (i > 0) {
      MRWSN_REQUIRE(rates_[i].mbps < rates_[i - 1].mbps,
                    "rates must be strictly decreasing");
      MRWSN_REQUIRE(rates_[i].sinr_min_linear <= rates_[i - 1].sinr_min_linear,
                    "lower rates cannot require more SINR");
      MRWSN_REQUIRE(rates_[i].rx_sensitivity_watt <= rates_[i - 1].rx_sensitivity_watt,
                    "lower rates cannot require more received power");
    }
  }
}

std::optional<RateIndex> RateTable::max_supported(double received_power_watt,
                                                  double sinr_linear) const {
  for (RateIndex i = 0; i < rates_.size(); ++i) {
    const Rate& r = rates_[i];
    if (received_power_watt >= r.rx_sensitivity_watt && sinr_linear >= r.sinr_min_linear)
      return i;
  }
  return std::nullopt;
}

}  // namespace mrwsn::phy
