#pragma once

#include <cstdint>

namespace mrwsn::phy {

/// Deterministic symmetric log-normal shadowing: each unordered node pair
/// gets a fixed dB offset drawn from N(0, sigma_db), derived by hashing
/// (pair, seed) — no state, no order dependence, fully reproducible.
///
/// Log-normal shadowing is the standard first-order correction to pure
/// log-distance path loss; the shadowing ablation uses it to check that
/// the paper's conclusions survive non-ideal propagation.
class Shadowing {
 public:
  Shadowing(double sigma_db, std::uint64_t seed);

  /// Linear power gain for the path between nodes `a` and `b`
  /// (gain(a, b) == gain(b, a); 1.0 when sigma_db == 0).
  double gain(std::size_t a, std::size_t b) const;

  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
  std::uint64_t seed_;
};

}  // namespace mrwsn::phy
