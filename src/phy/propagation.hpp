#pragma once

namespace mrwsn::phy {

/// Deterministic log-distance path loss:
///   Pr(d) = Pt * gain / max(d, d_ref)^exponent
/// with a 1 m reference distance. The paper's evaluation sets the exponent
/// to 4 (Section 5.2); gain defaults to 1 so absolute power levels are
/// fixed by the choice of noise floor (see PhyModel::calibrated).
class PathLoss {
 public:
  explicit PathLoss(double exponent = 4.0, double gain = 1.0,
                    double reference_distance = 1.0);

  /// Received power in watts for a transmit power `tx_watt` at `distance_m`.
  double received_power(double tx_watt, double distance_m) const;

  /// Distance at which the received power drops to `rx_watt`
  /// (inverse of received_power for distances beyond the reference).
  double range_for_power(double tx_watt, double rx_watt) const;

  double exponent() const { return exponent_; }

 private:
  double exponent_;
  double gain_;
  double reference_distance_;
};

}  // namespace mrwsn::phy
