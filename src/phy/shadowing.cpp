#include "phy/shadowing.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mrwsn::phy {

Shadowing::Shadowing(double sigma_db, std::uint64_t seed)
    : sigma_db_(sigma_db), seed_(seed) {
  MRWSN_REQUIRE(sigma_db >= 0.0, "shadowing sigma cannot be negative");
}

double Shadowing::gain(std::size_t a, std::size_t b) const {
  if (sigma_db_ == 0.0) return 1.0;
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  // Hash (pair, seed) into two independent uniforms, then Box-Muller.
  SplitMix64 hash(seed_ ^ (lo * 0x9e3779b97f4a7c15ULL) ^
                  (hi * 0xc2b2ae3d27d4eb4fULL));
  const double u1 =
      (static_cast<double>(hash.next() >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  const double u2 = static_cast<double>(hash.next() >> 11) * 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return units::db_to_ratio(sigma_db_ * z);
}

}  // namespace mrwsn::phy
