#include "phy/propagation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mrwsn::phy {

PathLoss::PathLoss(double exponent, double gain, double reference_distance)
    : exponent_(exponent), gain_(gain), reference_distance_(reference_distance) {
  MRWSN_REQUIRE(exponent > 0.0, "path-loss exponent must be positive");
  MRWSN_REQUIRE(gain > 0.0, "path gain must be positive");
  MRWSN_REQUIRE(reference_distance > 0.0, "reference distance must be positive");
}

double PathLoss::received_power(double tx_watt, double distance_m) const {
  MRWSN_REQUIRE(tx_watt >= 0.0, "transmit power cannot be negative");
  const double d = std::max(distance_m, reference_distance_);
  return tx_watt * gain_ / std::pow(d, exponent_);
}

double PathLoss::range_for_power(double tx_watt, double rx_watt) const {
  MRWSN_REQUIRE(tx_watt > 0.0 && rx_watt > 0.0,
                "range_for_power needs positive powers");
  return std::pow(tx_watt * gain_ / rx_watt, 1.0 / exponent_);
}

}  // namespace mrwsn::phy
