#pragma once

#include <optional>
#include <vector>

#include "phy/propagation.hpp"
#include "phy/rate.hpp"

namespace mrwsn::phy {

/// A rate described the way the paper describes it (Section 5.2): by its
/// Mbps value, its maximum lone-transmission distance, and its minimum SNR.
struct RateSpec {
  double mbps;
  double range_m;
  double snr_min_db;
};

/// The complete physical layer: propagation + radio powers + rate table.
/// All SINR-based feasibility questions (Eq. 1 and Eq. 3 of the paper) are
/// answered here.
class PhyModel {
 public:
  PhyModel(PathLoss loss, RateTable rates, double tx_power_watt,
           double noise_watt, double cs_threshold_watt);

  /// Build a PhyModel whose lone-transmission distances match `specs`
  /// exactly: the sensitivity of each rate is set to the received power at
  /// its specified range, and the noise floor is chosen as the largest
  /// value for which the SNR requirement is also met at that range for
  /// every rate (so the sensitivity is the binding condition when alone).
  ///
  /// `cs_range_factor` fixes the carrier-sense threshold at the power
  /// received from `cs_range_factor x (longest rate range)` metres — the
  /// usual "carrier-sense range exceeds transmission range" regime.
  static PhyModel calibrated(const std::vector<RateSpec>& specs,
                             double exponent = 4.0, double tx_power_watt = 0.1,
                             double cs_range_factor = 1.78);

  /// The paper's Section 5.2 physical layer: 802.11a rates
  /// {54, 36, 18, 6} Mbps with ranges {59, 79, 119, 158} m, SNR
  /// requirements {24.56, 18.80, 10.79, 6.02} dB and path-loss exponent 4.
  static PhyModel paper_default();

  /// Received power (watts) at `distance_m` from a node transmitting at
  /// the radio's transmit power.
  double received_power(double distance_m) const;

  /// SINR given a received signal power and total interference power.
  double sinr(double signal_watt, double interference_watt) const;

  /// Highest rate supported over a link of the given length when no other
  /// link transmits (Eq. 1 with zero interference).
  std::optional<RateIndex> max_rate_alone(double distance_m) const;

  /// Highest rate supported given the received signal power and the sum of
  /// interference powers (Eq. 1 + Eq. 3).
  std::optional<RateIndex> max_rate(double signal_watt,
                                    double interference_watt) const;

  /// Distance out to which a transmission is sensed as channel-busy.
  double carrier_sense_range() const;

  /// True when a single transmitter at `distance_m` raises the sensed
  /// power above the carrier-sense threshold.
  bool senses_busy_at(double distance_m) const;

  /// Longest lone-transmission range (that of the lowest rate).
  double max_tx_range() const;

  const RateTable& rates() const { return rates_; }
  const PathLoss& path_loss() const { return loss_; }
  double tx_power_watt() const { return tx_power_watt_; }
  double noise_watt() const { return noise_watt_; }
  double cs_threshold_watt() const { return cs_threshold_watt_; }

 private:
  PathLoss loss_;
  RateTable rates_;
  double tx_power_watt_;
  double noise_watt_;
  double cs_threshold_watt_;
};

}  // namespace mrwsn::phy
