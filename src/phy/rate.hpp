#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace mrwsn::phy {

/// One modulation/coding choice of a multirate radio (Eq. 1 of the paper):
/// a transmission at this rate succeeds iff the received power is at least
/// `rx_sensitivity_watt` AND the SINR is at least `sinr_min_linear`.
struct Rate {
  double mbps = 0.0;                ///< data rate in Mbps
  double sinr_min_linear = 0.0;     ///< minimum SINR (linear power ratio)
  double rx_sensitivity_watt = 0.0; ///< minimum received power (watts)
};

/// Index into a RateTable; smaller index = higher rate by convention.
using RateIndex = std::size_t;

/// An ordered set of rates, highest rate first. The paper's evaluation uses
/// the 802.11a subset {54, 36, 18, 6} Mbps; the table is also constructible
/// from arbitrary custom rates for the analytical scenarios.
class RateTable {
 public:
  /// Rates must be strictly decreasing in mbps, with non-increasing
  /// sensitivity and SINR requirements as the rate drops.
  explicit RateTable(std::vector<Rate> rates);

  std::size_t size() const { return rates_.size(); }
  const Rate& operator[](RateIndex i) const { return rates_[i]; }
  const std::vector<Rate>& rates() const { return rates_; }

  /// Highest rate whose sensitivity and SINR requirements are both met;
  /// nullopt when even the lowest rate fails (the transmission cannot
  /// succeed at all).
  std::optional<RateIndex> max_supported(double received_power_watt,
                                         double sinr_linear) const;

  /// Highest rate in Mbps (rates_[0]).
  double max_mbps() const { return rates_.front().mbps; }
  /// Lowest rate in Mbps (rates_.back()).
  double min_mbps() const { return rates_.back().mbps; }

 private:
  std::vector<Rate> rates_;
};

}  // namespace mrwsn::phy
