#include "phy/phy_model.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/units.hpp"

namespace mrwsn::phy {

PhyModel::PhyModel(PathLoss loss, RateTable rates, double tx_power_watt,
                   double noise_watt, double cs_threshold_watt)
    : loss_(loss),
      rates_(std::move(rates)),
      tx_power_watt_(tx_power_watt),
      noise_watt_(noise_watt),
      cs_threshold_watt_(cs_threshold_watt) {
  MRWSN_REQUIRE(tx_power_watt > 0.0, "transmit power must be positive");
  MRWSN_REQUIRE(noise_watt > 0.0, "noise power must be positive");
  MRWSN_REQUIRE(cs_threshold_watt > 0.0, "carrier-sense threshold must be positive");
}

PhyModel PhyModel::calibrated(const std::vector<RateSpec>& specs, double exponent,
                              double tx_power_watt, double cs_range_factor) {
  MRWSN_REQUIRE(!specs.empty(), "need at least one rate spec");
  MRWSN_REQUIRE(cs_range_factor >= 1.0, "carrier-sense range cannot be shorter than tx range");
  PathLoss loss(exponent);

  std::vector<Rate> rates;
  rates.reserve(specs.size());
  double noise = std::numeric_limits<double>::infinity();
  double longest_range = 0.0;
  for (const RateSpec& spec : specs) {
    MRWSN_REQUIRE(spec.range_m > 0.0, "rate range must be positive");
    Rate r;
    r.mbps = spec.mbps;
    r.sinr_min_linear = units::db_to_ratio(spec.snr_min_db);
    r.rx_sensitivity_watt = loss.received_power(tx_power_watt, spec.range_m);
    rates.push_back(r);
    // SNR must hold at the edge of the rate's range: Pr(range)/noise >= SINR.
    noise = std::min(noise, r.rx_sensitivity_watt / r.sinr_min_linear);
    longest_range = std::max(longest_range, spec.range_m);
  }

  const double cs_threshold =
      loss.received_power(tx_power_watt, cs_range_factor * longest_range);
  return PhyModel(loss, RateTable(std::move(rates)), tx_power_watt, noise,
                  cs_threshold);
}

PhyModel PhyModel::paper_default() {
  // Section 5.2: 802.11a subset, path-loss exponent 4.
  return calibrated({{54.0, 59.0, 24.56},
                     {36.0, 79.0, 18.80},
                     {18.0, 119.0, 10.79},
                     {6.0, 158.0, 6.02}},
                    /*exponent=*/4.0);
}

double PhyModel::received_power(double distance_m) const {
  return loss_.received_power(tx_power_watt_, distance_m);
}

double PhyModel::sinr(double signal_watt, double interference_watt) const {
  MRWSN_REQUIRE(interference_watt >= 0.0, "interference power cannot be negative");
  return signal_watt / (interference_watt + noise_watt_);
}

std::optional<RateIndex> PhyModel::max_rate_alone(double distance_m) const {
  const double pr = received_power(distance_m);
  return rates_.max_supported(pr, sinr(pr, 0.0));
}

std::optional<RateIndex> PhyModel::max_rate(double signal_watt,
                                            double interference_watt) const {
  return rates_.max_supported(signal_watt, sinr(signal_watt, interference_watt));
}

double PhyModel::carrier_sense_range() const {
  return loss_.range_for_power(tx_power_watt_, cs_threshold_watt_);
}

bool PhyModel::senses_busy_at(double distance_m) const {
  return received_power(distance_m) >= cs_threshold_watt_;
}

double PhyModel::max_tx_range() const {
  return loss_.range_for_power(tx_power_watt_,
                               rates_.rates().back().rx_sensitivity_watt);
}

}  // namespace mrwsn::phy
