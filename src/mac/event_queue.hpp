#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace mrwsn::mac {

/// A move-only `void()` callable with a small-buffer optimization: closures
/// up to kInlineBytes live inline in the object (no allocation per event),
/// larger ones fall back to the heap. The discrete-event kernel schedules
/// millions of short-lived closures per simulated second, so the per-event
/// allocation of `std::function` was a measurable cost (BM_EventQueueChurn
/// in bench/perf_micro.cpp keeps the before/after).
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = &heap_vtable<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : vt_(other.vt_) {
    if (vt_) vt_->relocate(other.buf_, buf_);
    other.vt_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_) vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(unsigned char*);
    /// Move the stored closure from `from` into raw storage `to` and
    /// destroy the source (for inline storage; heap storage just moves the
    /// pointer).
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](unsigned char* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
      [](unsigned char* from, unsigned char* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (static_cast<void*>(to)) Fn(std::move(*src));
        src->~Fn();
      },
      [](unsigned char* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); }};

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](unsigned char* b) { (**reinterpret_cast<Fn**>(b))(); },
      [](unsigned char* from, unsigned char* to) {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* b) { delete *reinterpret_cast<Fn**>(b); }};

  void reset() {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

/// Identifier of a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = std::uint64_t;

/// Deterministic ordering key for events scheduled at the same instant.
///
/// The sharded parallel simulator (mac/parallel_sim.*) must produce
/// bit-identical results for any region partitioning, so same-timestamp
/// ordering cannot depend on *insertion* order (a cross-region message is
/// inserted at a window barrier, a region-local event immediately).
/// Instead every event carries an intrinsic key: a class (channel updates
/// before MAC timers, etc.), the id of the originating actor, and that
/// actor's own event sequence number. Each actor's behaviour is a
/// deterministic function of the events it observes, so (time, klass,
/// origin, seq) is a partition-independent total order.
struct EventKey {
  std::uint32_t klass = 0;   ///< coarse priority class at equal times
  std::uint32_t origin = 0;  ///< originating actor (node, link, flow, ...)
  std::uint64_t seq = 0;     ///< per-origin sequence number
};

/// A minimal discrete-event simulation kernel: a time-ordered queue of
/// callbacks with O(log n) schedule and O(1) lazy cancel.
///
/// Implementation: an indexed binary heap over (time, key, insertion
/// counter) entries pointing into a slot slab that owns the callbacks.
/// cancel() only bumps the slot's generation — the heap entry becomes a
/// tombstone that is discarded when it surfaces (lazy cancellation), so
/// cancels never pay the O(log n) heap repair that dominated the previous
/// std::map implementation under backoff-freeze churn.
///
/// Events scheduled with the plain schedule_at/schedule_in overloads fire
/// in schedule order at equal timestamps (FIFO, as before). Events
/// scheduled with an explicit EventKey are ordered by (klass, origin, seq)
/// at equal timestamps, *before* any plain event at the same instant
/// (plain events use the largest class).
class EventQueue {
 public:
  using Callback = SmallFn;

  /// The class assigned to plain (unkeyed) events: larger than any class a
  /// keyed caller uses, so keyed events win ties.
  static constexpr std::uint32_t kFifoClass = 0x80000000u;

  /// How a run ended — the windowed-barrier caller in the parallel
  /// simulator needs to distinguish "no more events at all" from "no more
  /// events in this window".
  enum class RunEnd {
    kReachedLimit,  ///< pending events remain beyond the bound
    kExhausted,     ///< the queue is empty
  };

  /// Current simulation time in seconds.
  double now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Returns an id
  /// usable with cancel(). FIFO at equal timestamps.
  EventId schedule_at(double when, Callback fn) {
    return schedule_at(when, EventKey{kFifoClass, 0, 0}, std::move(fn));
  }

  /// Schedule with an explicit deterministic ordering key.
  EventId schedule_at(double when, EventKey key, Callback fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false when the event already fired,
  /// was already cancelled, or never existed. O(1): the heap entry is left
  /// behind as a tombstone.
  bool cancel(EventId id);

  /// Run events with `when <= until`. The clock ends at exactly `until`
  /// in every case — including when the queue empties earlier or was
  /// empty to begin with — so a windowed caller can rely on now() == until
  /// afterwards (an "empty window" still advances time). Returns
  /// kExhausted when no events remain pending at all, kReachedLimit when
  /// events beyond `until` are still pending.
  RunEnd run_until(double until) { return run_loop(until, /*inclusive=*/true); }

  /// Like run_until but fires only events with `when < until` (half-open
  /// window). The parallel simulator's windows are half-open so an event
  /// landing exactly on a barrier is always processed *after* the barrier,
  /// in full key order against the messages the barrier delivers.
  RunEnd run_before(double until) {
    return run_loop(until, /*inclusive=*/false);
  }

  /// True when no events are pending (tombstones excluded).
  bool empty() const { return live_ == 0; }

  std::size_t pending() const { return live_; }

  /// Timestamp of the earliest pending event, or +infinity when empty.
  /// Prunes surfaced tombstones as a side effect.
  double next_time();

 private:
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;  ///< bumped when the slot is vacated
  };
  struct Entry {
    double when;
    std::uint32_t klass;
    std::uint32_t origin;
    std::uint64_t seq;
    std::uint64_t fifo;  ///< insertion counter: FIFO tie-break, total order
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.klass != b.klass) return a.klass < b.klass;
    if (a.origin != b.origin) return a.origin < b.origin;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.fifo < b.fifo;
  }

  RunEnd run_loop(double until, bool inclusive);
  void push_entry(const Entry& entry);
  void pop_entry();
  /// Discard tombstones sitting at the heap top.
  void prune_top();

  double now_ = 0.0;
  std::uint64_t fifo_seq_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Entry> heap_;
};

}  // namespace mrwsn::mac
