#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

namespace mrwsn::mac {

/// Identifier of a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = std::uint64_t;

/// A minimal discrete-event simulation kernel: a time-ordered queue of
/// callbacks with O(log n) schedule/cancel. Events scheduled for the same
/// instant fire in schedule order (FIFO), which keeps runs deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time in seconds.
  double now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(double when, Callback fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false when the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// Run events until the queue empties or simulation time would exceed
  /// `until`. The clock ends at `until` (or earlier if the queue empties).
  void run_until(double until);

  /// True when no events are pending.
  bool empty() const { return events_.empty(); }

  std::size_t pending() const { return events_.size(); }

 private:
  using Key = std::pair<double, EventId>;  // (time, sequence)

  double now_ = 0.0;
  EventId next_id_ = 0;
  std::map<Key, Callback> events_;
  std::map<EventId, double> times_;  // id -> scheduled time, for cancel()
};

}  // namespace mrwsn::mac
