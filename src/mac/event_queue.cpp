#include "mac/event_queue.hpp"

#include "util/error.hpp"

namespace mrwsn::mac {

namespace {
constexpr std::uint32_t kSlotBits = 32;
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

EventId EventQueue::schedule_at(double when, EventKey key, Callback fn) {
  MRWSN_REQUIRE(when >= now_, "cannot schedule an event in the past");
  MRWSN_REQUIRE(fn != nullptr, "event callback must be callable");

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& record = slots_[slot];
  record.fn = std::move(fn);

  Entry entry{when, key.klass, key.origin, key.seq,
              fifo_seq_++, slot,     record.gen};
  push_entry(entry);
  ++live_;
  return (static_cast<EventId>(record.gen) << kSlotBits) | slot;
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> kSlotBits);
  if (slot >= slots_.size()) return false;
  Slot& record = slots_[slot];
  if (record.gen != gen || !record.fn) return false;
  record.fn = nullptr;
  ++record.gen;  // the heap entry becomes a tombstone
  free_slots_.push_back(slot);
  --live_;
  return true;
}

void EventQueue::prune_top() {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].gen == top.gen) return;
    pop_entry();
  }
}

double EventQueue::next_time() {
  prune_top();
  return heap_.empty() ? kInfinity : heap_.front().when;
}

EventQueue::RunEnd EventQueue::run_loop(double until, bool inclusive) {
  MRWSN_REQUIRE(until >= now_, "cannot run backwards in time");
  for (;;) {
    prune_top();
    if (heap_.empty()) break;
    const Entry top = heap_.front();
    if (inclusive ? top.when > until : top.when >= until) break;
    Slot& record = slots_[top.slot];
    Callback fn = std::move(record.fn);
    record.fn = nullptr;
    ++record.gen;
    free_slots_.push_back(top.slot);
    --live_;
    pop_entry();
    now_ = top.when;
    fn();
  }
  // The clock always lands on `until`, even when the queue emptied
  // earlier: a windowed caller treats run_* as "advance to the barrier".
  now_ = until;
  return live_ == 0 ? RunEnd::kExhausted : RunEnd::kReachedLimit;
}

namespace {
// 4-ary layout: child i of p is 4p+1+i. DES queues are pop-heavy (every
// event is popped once, and a sifted-down element usually travels the
// full height because fresh events carry the latest deadlines), so
// halving the tree height against a binary heap pays directly; the four
// children also sit contiguously, which a binary heap's two don't.
constexpr std::size_t kHeapArity = 4;
}  // namespace

void EventQueue::push_entry(const Entry& entry) {
  // Percolate a hole up instead of swapping 40-byte entries at each level:
  // one entry write per level plus a final placement.
  heap_.push_back(entry);
  std::size_t child = heap_.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / kHeapArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[child] = heap_[parent];
    child = parent;
  }
  heap_[child] = entry;
}

void EventQueue::pop_entry() {
  const Entry moved = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  std::size_t parent = 0;
  const std::size_t count = heap_.size();
  for (;;) {
    const std::size_t first = kHeapArity * parent + 1;
    if (first >= count) break;
    const std::size_t last = std::min(first + kHeapArity, count);
    std::size_t best = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], moved)) break;
    heap_[parent] = heap_[best];
    parent = best;
  }
  heap_[parent] = moved;
}

}  // namespace mrwsn::mac
