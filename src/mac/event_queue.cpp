#include "mac/event_queue.hpp"

#include "util/error.hpp"

namespace mrwsn::mac {

EventId EventQueue::schedule_at(double when, Callback fn) {
  MRWSN_REQUIRE(when >= now_, "cannot schedule an event in the past");
  MRWSN_REQUIRE(fn != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  events_.emplace(Key{when, id}, std::move(fn));
  times_.emplace(id, when);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = times_.find(id);
  if (it == times_.end()) return false;
  events_.erase(Key{it->second, id});
  times_.erase(it);
  return true;
}

void EventQueue::run_until(double until) {
  MRWSN_REQUIRE(until >= now_, "cannot run backwards in time");
  while (!events_.empty()) {
    const auto it = events_.begin();
    const double when = it->first.first;
    if (when > until) break;
    Callback fn = std::move(it->second);
    times_.erase(it->first.second);
    events_.erase(it);
    now_ = when;
    fn();
  }
  now_ = until;
}

}  // namespace mrwsn::mac
