#include "mac/csma.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>

#include "mac/event_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mrwsn::mac {

namespace {
constexpr EventId kNoEvent = std::numeric_limits<EventId>::max();
}

struct CsmaSimulator::Impl {
  // -------------------------------------------------------------- types
  struct Packet {
    std::size_t flow = 0;
    std::size_t hop = 0;      ///< index into the flow's link path
    double created_at = 0.0;  ///< generation time at the flow source
  };

  struct FlowState {
    std::vector<net::LinkId> links;
    double demand_mbps = 0.0;
    double arrival_interval_s = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::vector<double> latencies_s;  ///< per delivered packet
  };

  /// ARF state per link: the current rate plus success/failure streaks.
  struct ArfState {
    phy::RateIndex rate = 0;
    unsigned successes = 0;
    unsigned failures = 0;
  };

  enum class Kind { kData, kRts, kCts, kAck };

  struct Transmission {
    net::NodeId tx = 0;
    double end_time = 0.0;
    Kind kind = Kind::kAck;
    // Reception bookkeeping for decoded frames (DATA/RTS/CTS; ACKs are
    // assumed to always arrive).
    net::NodeId rx = 0;

    /// Frames whose reception is SINR-tracked.
    bool tracked() const { return kind != Kind::kAck; }
    net::LinkId link = 0;
    phy::RateIndex rate = 0;  ///< the rate this DATA frame was sent at
    Packet packet;
    double signal_watt = 0.0;
    double max_interference_watt = 0.0;
    bool corrupted = false;  ///< receiver itself transmitted meanwhile
  };

  enum class MacState { kIdle, kContending, kTransmitting, kAwaitingAck };

  struct NodeMac {
    std::deque<Packet> queue;
    MacState state = MacState::kIdle;
    unsigned cw = 0;
    unsigned retries = 0;
    int backoff_slots = -1;  ///< -1: not drawn for the current frame
    EventId timer = kNoEvent;
    double countdown_started = 0.0;
    bool sensed_busy = false;
    double nav_until = 0.0;  ///< virtual carrier sense (RTS/CTS mode)
    // busy-time accounting
    double busy_accum = 0.0;
    double busy_since = -1.0;  ///< <0 when currently idle
  };

  // ------------------------------------------------------------- state
  const net::Network& network;
  MacParams params;
  Rng rng;
  EventQueue queue;
  std::vector<FlowState> flows;
  std::vector<NodeMac> nodes;
  std::vector<ArfState> arf;  ///< by link id
  std::vector<Transmission> active;  // small; linear scans are fine
  bool ran = false;
  double measure_start = 0.0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t failed_receptions = 0;
  std::uint64_t control_failures = 0;

  Impl(const net::Network& net, MacParams p, std::uint64_t seed)
      : network(net), params(p), rng(seed) {
    nodes.resize(network.num_nodes());
    for (NodeMac& node : nodes) node.cw = params.cw_min;
    arf.resize(network.num_links());
    for (net::LinkId id = 0; id < network.num_links(); ++id)
      arf[id].rate = network.link(id).best_rate_alone;
  }

  // ------------------------------------------------------ rate adaptation
  phy::RateIndex current_rate(net::LinkId link) const {
    return params.enable_arf ? arf[link].rate
                             : network.link(link).best_rate_alone;
  }

  void arf_on_success(net::LinkId link) {
    if (!params.enable_arf) return;
    ArfState& state = arf[link];
    state.failures = 0;
    if (++state.successes >= params.arf_up_after) {
      state.successes = 0;
      // Probe one step faster, but never beyond what the link's received
      // power supports when alone (the sensitivity bound).
      if (state.rate > network.link(link).best_rate_alone) --state.rate;
    }
  }

  void arf_on_failure(net::LinkId link) {
    if (!params.enable_arf) return;
    ArfState& state = arf[link];
    state.successes = 0;
    if (++state.failures >= params.arf_down_after) {
      state.failures = 0;
      if (state.rate + 1 < network.phy().rates().size()) ++state.rate;
    }
  }

  // ------------------------------------------------------- channel view
  /// Power node `n` senses from all active transmissions it is not part of.
  double sensed_power(net::NodeId n) const {
    double power = 0.0;
    for (const Transmission& t : active) {
      if (t.tx == n) continue;
      power += network.received_power(t.tx, n);
    }
    return power;
  }

  /// True when `n` currently has any frame (DATA or ACK) on the air.
  bool is_on_air(net::NodeId n) const {
    return std::any_of(active.begin(), active.end(),
                       [&](const Transmission& t) { return t.tx == n; });
  }

  bool channel_busy_for(net::NodeId n) const {
    const NodeMac& node = nodes[n];
    if (node.state == MacState::kTransmitting || is_on_air(n)) return true;
    if (queue.now() < node.nav_until) return true;  // virtual carrier sense
    return sensed_power(n) >= network.phy().cs_threshold_watt();
  }

  /// Extend node `n`'s NAV to `until` and refresh channel state now and at
  /// NAV expiry.
  void set_nav(net::NodeId n, double until) {
    NodeMac& node = nodes[n];
    if (until <= node.nav_until) return;
    node.nav_until = until;
    queue.schedule_at(until, [this] { refresh_channel(); });
    refresh_channel();
  }

  /// Let third parties that decode a control frame from `tx` (skipping
  /// `responder`) defer until `exchange_end`. Decoding is approximated by
  /// the base rate's sensitivity on received power.
  void propagate_nav(net::NodeId tx, net::NodeId responder, double exchange_end) {
    const double base_sensitivity =
        network.phy().rates().rates().back().rx_sensitivity_watt;
    for (net::NodeId n = 0; n < nodes.size(); ++n) {
      if (n == tx || n == responder) continue;
      if (is_on_air(n)) continue;  // cannot decode while transmitting
      if (network.received_power(tx, n) >= base_sensitivity)
        set_nav(n, exchange_end);
    }
  }

  /// Re-evaluate every node's sensed state after the set of active
  /// transmissions changed.
  void refresh_channel() {
    for (net::NodeId n = 0; n < nodes.size(); ++n) {
      const bool busy = channel_busy_for(n);
      if (busy != nodes[n].sensed_busy) {
        nodes[n].sensed_busy = busy;
        account_busy_edge(n, busy);
        on_channel_change(n, busy);
      }
    }
  }

  void account_busy_edge(net::NodeId n, bool now_busy) {
    NodeMac& node = nodes[n];
    if (now_busy) {
      node.busy_since = queue.now();
    } else if (node.busy_since >= 0.0) {
      node.busy_accum += queue.now() - node.busy_since;
      node.busy_since = -1.0;
    }
  }

  // --------------------------------------------------------- MAC logic
  void maybe_start_contention(net::NodeId n) {
    NodeMac& node = nodes[n];
    if (node.state != MacState::kIdle || node.queue.empty()) return;
    node.state = MacState::kContending;
    if (node.backoff_slots < 0)
      node.backoff_slots = static_cast<int>(rng.uniform_int(0, node.cw));
    if (!node.sensed_busy) start_countdown(n);
  }

  void start_countdown(net::NodeId n) {
    NodeMac& node = nodes[n];
    MRWSN_ASSERT(node.state == MacState::kContending, "countdown outside contention");
    node.countdown_started = queue.now();
    const double wait =
        params.difs_s + static_cast<double>(node.backoff_slots) * params.slot_time_s;
    node.timer = queue.schedule_in(wait, [this, n] { begin_data(n); });
  }

  void freeze_countdown(net::NodeId n) {
    NodeMac& node = nodes[n];
    if (node.timer == kNoEvent) return;
    queue.cancel(node.timer);
    node.timer = kNoEvent;
    // Credit fully elapsed backoff slots (time beyond the DIFS phase).
    const double elapsed = queue.now() - node.countdown_started - params.difs_s;
    if (elapsed > 0.0) {
      const int done = static_cast<int>(elapsed / params.slot_time_s);
      node.backoff_slots = std::max(0, node.backoff_slots - done);
    }
  }

  void on_channel_change(net::NodeId n, bool busy) {
    NodeMac& node = nodes[n];
    if (node.state != MacState::kContending) return;
    if (busy) {
      freeze_countdown(n);
    } else if (node.timer == kNoEvent) {
      start_countdown(n);
    }
  }

  /// The head-of-queue link of node `n`.
  const net::Link& head_link(net::NodeId n) const {
    const Packet& packet = nodes[n].queue.front();
    return network.link(flows[packet.flow].links[packet.hop]);
  }

  /// DATA airtime at the link's current rate.
  double data_duration(const net::Link& link) const {
    const double rate_mbps = network.phy().rates()[current_rate(link.id)].mbps;
    return params.phy_overhead_s +
           static_cast<double>(params.payload_bits) / (rate_mbps * 1e6);
  }

  /// Backoff completed: start the exchange (plain DATA, or RTS first).
  void begin_data(net::NodeId n) {
    NodeMac& node = nodes[n];
    node.timer = kNoEvent;
    MRWSN_ASSERT(node.state == MacState::kContending, "transmit outside contention");
    MRWSN_ASSERT(!node.queue.empty(), "transmit with empty queue");
    node.backoff_slots = -1;
    if (params.enable_rts_cts) {
      begin_rts(n);
    } else {
      transmit_data(n);
    }
  }

  /// Build a tracked transmission of `kind` from `tx_node` to `rx_node`.
  Transmission make_tracked(Kind kind, net::NodeId tx_node, net::NodeId rx_node,
                            double duration, phy::RateIndex rate) {
    Transmission t;
    t.tx = tx_node;
    t.end_time = queue.now() + duration;
    t.kind = kind;
    t.rx = rx_node;
    t.rate = rate;
    t.signal_watt = network.received_power(tx_node, rx_node);
    t.max_interference_watt = reception_interference(t);
    t.corrupted =
        nodes[rx_node].state == MacState::kTransmitting || is_on_air(rx_node);
    return t;
  }

  void transmit_data(net::NodeId n) {
    NodeMac& node = nodes[n];
    MRWSN_ASSERT(!node.queue.empty(), "transmit with empty queue");
    const Packet packet = node.queue.front();
    const net::Link& link = head_link(n);
    MRWSN_ASSERT(link.tx == n, "packet queued at the wrong node");

    const phy::RateIndex rate = current_rate(link.id);
    const double duration = data_duration(link);

    node.state = MacState::kTransmitting;
    ++data_transmissions;

    Transmission t = make_tracked(Kind::kData, n, link.rx, duration, rate);
    t.link = link.id;
    t.packet = packet;
    begin_transmission(std::move(t));
    queue.schedule_in(duration, [this, n] { end_data(n); });
  }

  // ------------------------------------------------------------ RTS/CTS
  phy::RateIndex base_rate() const {
    return network.phy().rates().size() - 1;  // control frames at base rate
  }

  void begin_rts(net::NodeId n) {
    NodeMac& node = nodes[n];
    const net::Link& link = head_link(n);
    node.state = MacState::kTransmitting;
    begin_transmission(
        make_tracked(Kind::kRts, n, link.rx, params.rts_duration_s, base_rate()));
    queue.schedule_in(params.rts_duration_s, [this, n] { end_rts(n); });
  }

  void end_rts(net::NodeId n) {
    const Transmission finished = take_transmission(n, Kind::kRts);
    NodeMac& node = nodes[n];
    node.state = MacState::kAwaitingAck;  // waiting for the CTS
    if (!reception_succeeded(finished)) {
      ++control_failures;
      const double timeout =
          params.sifs_s + params.cts_duration_s + params.slot_time_s;
      queue.schedule_in(timeout, [this, n] { handle_ack_timeout(n); });
      return;
    }
    // NAV for everyone who heard the RTS: the rest of the exchange.
    const double data_s = data_duration(head_link(n));
    const double exchange_end = queue.now() + 3 * params.sifs_s +
                                params.cts_duration_s + data_s +
                                params.ack_duration_s;
    propagate_nav(n, finished.rx, exchange_end);
    queue.schedule_in(params.sifs_s, [this, n, rx = finished.rx] {
      begin_cts(n, rx);
    });
  }

  void begin_cts(net::NodeId initiator, net::NodeId responder) {
    begin_transmission(make_tracked(Kind::kCts, responder, initiator,
                                    params.cts_duration_s, base_rate()));
    queue.schedule_in(params.cts_duration_s, [this, initiator, responder] {
      end_cts(initiator, responder);
    });
  }

  void end_cts(net::NodeId initiator, net::NodeId responder) {
    const Transmission finished = take_transmission(responder, Kind::kCts);
    if (!reception_succeeded(finished)) {
      ++control_failures;
      queue.schedule_in(params.slot_time_s,
                        [this, initiator] { handle_ack_timeout(initiator); });
      return;
    }
    // NAV for the responder's neighbourhood: DATA + ACK remain.
    const double data_s = data_duration(head_link(initiator));
    const double exchange_end =
        queue.now() + 2 * params.sifs_s + data_s + params.ack_duration_s;
    propagate_nav(responder, initiator, exchange_end);
    queue.schedule_in(params.sifs_s,
                      [this, initiator] { transmit_data(initiator); });
  }

  /// Instantaneous interference at a DATA reception's receiver from every
  /// other active transmission.
  double reception_interference(const Transmission& t) const {
    double interference = 0.0;
    for (const Transmission& other : active) {
      if (&other == &t || other.tx == t.tx) continue;
      interference += network.received_power(other.tx, t.rx);
    }
    return interference;
  }

  void begin_transmission(Transmission t) {
    active.push_back(std::move(t));
    const Transmission& added = active.back();
    // A node that starts transmitting corrupts anything it was receiving,
    // and raises interference at every ongoing reception.
    for (Transmission& other : active) {
      if (!other.tracked() || &other == &added) continue;
      if (other.rx == added.tx) other.corrupted = true;
      other.max_interference_watt =
          std::max(other.max_interference_watt, reception_interference(other));
    }
    refresh_channel();
  }

  /// Remove and return the active transmission of `kind` from `tx_node`.
  Transmission take_transmission(net::NodeId tx_node, Kind kind) {
    const auto it = std::find_if(active.begin(), active.end(),
                                 [&](const Transmission& t) {
                                   return t.tx == tx_node && t.kind == kind;
                                 });
    MRWSN_ASSERT(it != active.end(), "ending a transmission that is not active");
    const Transmission finished = *it;
    active.erase(it);
    refresh_channel();
    return finished;
  }

  void end_data(net::NodeId n) {
    NodeMac& node = nodes[n];
    const Transmission finished = take_transmission(n, Kind::kData);

    const bool success = reception_succeeded(finished);
    if (!success) ++failed_receptions;
    node.state = MacState::kAwaitingAck;

    if (success) {
      // Receiver sends an ACK after SIFS; the ACK occupies the channel.
      queue.schedule_in(params.sifs_s, [this, finished] {
        Transmission ack;
        ack.tx = finished.rx;
        ack.end_time = queue.now() + params.ack_duration_s;
        ack.kind = Kind::kAck;
        begin_transmission(std::move(ack));
        queue.schedule_in(params.ack_duration_s, [this, finished] {
          (void)take_transmission(finished.rx, Kind::kAck);
          complete_success(finished);
        });
      });
    } else {
      // No ACK will come; time out and retry.
      const double timeout =
          params.sifs_s + params.ack_duration_s + params.slot_time_s;
      queue.schedule_in(timeout, [this, n] { handle_ack_timeout(n); });
    }
  }

  bool reception_succeeded(const Transmission& t) const {
    if (t.corrupted) return false;
    const phy::PhyModel& phy = network.phy();
    const phy::Rate& rate = phy.rates()[t.rate];
    if (t.signal_watt < rate.rx_sensitivity_watt) return false;
    return phy.sinr(t.signal_watt, t.max_interference_watt) >= rate.sinr_min_linear;
  }

  void complete_success(const Transmission& t) {
    NodeMac& node = nodes[t.tx];
    MRWSN_ASSERT(node.state == MacState::kAwaitingAck, "stray ACK completion");
    MRWSN_ASSERT(!node.queue.empty(), "ACKed a frame that left the queue");
    node.queue.pop_front();
    node.state = MacState::kIdle;
    node.retries = 0;
    node.cw = params.cw_min;

    arf_on_success(t.link);
    FlowState& flow = flows[t.packet.flow];
    if (t.packet.hop + 1 == flow.links.size()) {
      if (queue.now() >= measure_start) {
        ++flow.delivered;
        flow.latencies_s.push_back(queue.now() - t.packet.created_at);
      }
    } else {
      enqueue_packet(t.rx,
                     Packet{t.packet.flow, t.packet.hop + 1, t.packet.created_at});
    }
    maybe_start_contention(t.tx);
  }

  void handle_ack_timeout(net::NodeId n) {
    NodeMac& node = nodes[n];
    MRWSN_ASSERT(node.state == MacState::kAwaitingAck, "stray ACK timeout");
    node.state = MacState::kIdle;
    {
      MRWSN_ASSERT(!node.queue.empty(), "timeout with an empty queue");
      const Packet& head = node.queue.front();
      arf_on_failure(flows[head.flow].links[head.hop]);
    }
    ++node.retries;
    if (node.retries > params.retry_limit) {
      MRWSN_ASSERT(!node.queue.empty(), "dropping from an empty queue");
      const Packet packet = node.queue.front();
      node.queue.pop_front();
      if (queue.now() >= measure_start) ++flows[packet.flow].dropped;
      node.retries = 0;
      node.cw = params.cw_min;
    } else {
      node.cw = std::min(2 * (node.cw + 1) - 1, params.cw_max);
    }
    maybe_start_contention(n);
  }

  // ------------------------------------------------------------ traffic
  void enqueue_packet(net::NodeId n, Packet packet) {
    NodeMac& node = nodes[n];
    if (node.queue.size() >= params.queue_limit) {
      if (queue.now() >= measure_start) ++flows[packet.flow].dropped;
      return;
    }
    node.queue.push_back(packet);
    maybe_start_contention(n);
  }

  void schedule_arrival(std::size_t flow_idx, double when) {
    queue.schedule_at(when, [this, flow_idx] {
      FlowState& flow = flows[flow_idx];
      if (queue.now() >= measure_start) ++flow.generated;
      const net::NodeId source = network.link(flow.links.front()).tx;
      enqueue_packet(source, Packet{flow_idx, 0, queue.now()});
      schedule_arrival(flow_idx, queue.now() + flow.arrival_interval_s);
    });
  }

  // -------------------------------------------------------------- runs
  SimReport run(double duration_s, double warmup_s) {
    MRWSN_REQUIRE(!ran, "a CsmaSimulator can only run once");
    MRWSN_REQUIRE(duration_s > 0.0 && warmup_s >= 0.0, "invalid durations");
    ran = true;
    measure_start = warmup_s;

    for (std::size_t f = 0; f < flows.size(); ++f)
      schedule_arrival(f, rng.uniform(0.0, flows[f].arrival_interval_s));

    // Warmup, then reset busy accounting at the measurement boundary.
    queue.run_until(warmup_s);
    for (net::NodeId n = 0; n < nodes.size(); ++n) {
      nodes[n].busy_accum = 0.0;
      if (nodes[n].busy_since >= 0.0) nodes[n].busy_since = warmup_s;
    }

    const double end = warmup_s + duration_s;
    queue.run_until(end);

    SimReport report;
    report.measured_s = duration_s;
    report.data_transmissions = data_transmissions;
    report.failed_receptions = failed_receptions;
    report.control_failures = control_failures;
    report.node_idle.reserve(nodes.size());
    for (NodeMac& node : nodes) {
      double busy = node.busy_accum;
      if (node.busy_since >= 0.0) busy += end - node.busy_since;
      report.node_idle.push_back(
          std::clamp(1.0 - busy / duration_s, 0.0, 1.0));
    }
    for (FlowState& flow : flows) {
      FlowStats stats;
      stats.offered_mbps = flow.demand_mbps;
      stats.delivered_mbps = static_cast<double>(flow.delivered) *
                             static_cast<double>(params.payload_bits) /
                             (duration_s * 1e6);
      stats.generated_packets = flow.generated;
      stats.delivered_packets = flow.delivered;
      stats.dropped_packets = flow.dropped;
      if (!flow.latencies_s.empty()) {
        std::sort(flow.latencies_s.begin(), flow.latencies_s.end());
        double sum = 0.0;
        for (double l : flow.latencies_s) sum += l;
        stats.mean_latency_s = sum / static_cast<double>(flow.latencies_s.size());
        stats.p95_latency_s =
            flow.latencies_s[(flow.latencies_s.size() - 1) * 95 / 100];
        stats.max_latency_s = flow.latencies_s.back();
      }
      report.flows.push_back(stats);
    }
    return report;
  }
};

CsmaSimulator::CsmaSimulator(const net::Network& network, MacParams params,
                             std::uint64_t seed)
    : impl_(std::make_unique<Impl>(network, params, seed)) {}

CsmaSimulator::~CsmaSimulator() = default;

void CsmaSimulator::add_flow(std::vector<net::LinkId> path_links,
                             double demand_mbps) {
  MRWSN_REQUIRE(!path_links.empty(), "a flow needs at least one link");
  MRWSN_REQUIRE(demand_mbps > 0.0, "flow demand must be positive");
  for (std::size_t i = 0; i + 1 < path_links.size(); ++i) {
    MRWSN_REQUIRE(impl_->network.link(path_links[i]).rx ==
                      impl_->network.link(path_links[i + 1]).tx,
                  "flow links must form a contiguous path");
  }
  Impl::FlowState flow;
  flow.links = std::move(path_links);
  flow.demand_mbps = demand_mbps;
  flow.arrival_interval_s = static_cast<double>(impl_->params.payload_bits) /
                            (demand_mbps * 1e6);
  impl_->flows.push_back(std::move(flow));
}

SimReport CsmaSimulator::run(double duration_s, double warmup_s) {
  return impl_->run(duration_s, warmup_s);
}

}  // namespace mrwsn::mac
