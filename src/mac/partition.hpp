#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace mrwsn::mac {

/// A spatial partition of a network's nodes into rectangular grid regions.
///
/// The sharded simulator (mac/parallel_sim.*) gives each region its own
/// event queue and runs regions in parallel between lookahead barriers.
/// Partitioning is a *performance* knob only: cross-node effects always
/// travel with the same sense latency whether or not they cross a region
/// boundary, so results are bit-identical for every grid shape. Cells on
/// the order of the carrier-sense range keep most signal traffic
/// region-local, which is what auto_grid_partition aims for.
struct GridPartition {
  std::size_t grid_x = 1;
  std::size_t grid_y = 1;
  std::vector<std::uint32_t> region_of_node;          ///< by node id
  std::vector<std::vector<net::NodeId>> nodes_of_region;  ///< ids ascending

  std::size_t num_regions() const { return nodes_of_region.size(); }
};

/// Partition `network`'s bounding box into an exact grid_x x grid_y grid.
/// Requires grid_x, grid_y >= 1. Degenerate extents (all nodes collinear
/// or coincident) collapse the affected axis to a single column/row.
GridPartition make_grid_partition(const net::Network& network,
                                  std::size_t grid_x, std::size_t grid_y);

/// Grid with cells no smaller than the PHY's carrier-sense range along
/// each axis (capped at 16x16), so that most carrier-sense interactions
/// stay inside one region.
GridPartition auto_grid_partition(const net::Network& network);

}  // namespace mrwsn::mac
