#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/schedule.hpp"
#include "mac/csma.hpp"
#include "mac/partition.hpp"
#include "mac/tdma.hpp"
#include "net/network.hpp"

namespace mrwsn::mac {

/// Sharding knobs for the region-parallel simulators.
///
/// None of these change results except latency_s and interaction_floor,
/// which are part of the *model*: the parallel simulators charge a uniform
/// sense latency on every cross-node effect (signal sensed, NAV heard,
/// frame handed to the next hop), which is what gives every region a
/// guaranteed lookahead. grid/thread choices are pure performance knobs —
/// SimReport is bit-identical across all of them.
struct ShardParams {
  std::size_t grid_x = 0;  ///< 0: auto-size cells by carrier-sense range
  std::size_t grid_y = 0;
  std::size_t threads = 0;  ///< 0: util::configured_threads()

  /// Uniform latency charged on every cross-node effect, applied alike
  /// inside and across regions; also the conservative lookahead window.
  /// Default is DIFS-scale: two slots + a SIFS of sensing/decode latency.
  double latency_s = 34e-6;

  /// Signals weaker than this fraction of the noise floor are not
  /// propagated at all (they could never move a carrier-sense or SINR
  /// decision by a measurable amount). Bounds per-transmission fan-out on
  /// large topologies; identical for every partitioning.
  double interaction_floor = 0.01;
};

/// Region-parallel counterpart of CsmaSimulator: the same DCF model
/// (carrier sensing, DIFS + binary exponential backoff, DATA/ACK, optional
/// RTS/CTS NAV and ARF), restated as a message-passing simulation in which
/// every cross-node effect arrives `latency_s` after its cause. Nodes are
/// partitioned into spatial-grid regions, each with its own event queue;
/// regions run in parallel inside conservative lookahead windows of
/// latency_s and exchange time-stamped messages at window barriers.
///
/// Determinism: every event carries an intrinsic (class, origin, sequence)
/// key and queues order events by (time, key), so the execution order —
/// and therefore SimReport, bit for bit — is independent of the grid shape
/// and thread count. See DESIGN.md §11.
class ParallelCsmaSimulator {
 public:
  ParallelCsmaSimulator(const net::Network& network, MacParams params,
                        ShardParams shard, std::uint64_t seed);
  ~ParallelCsmaSimulator();

  ParallelCsmaSimulator(const ParallelCsmaSimulator&) = delete;
  ParallelCsmaSimulator& operator=(const ParallelCsmaSimulator&) = delete;

  /// Add a CBR flow along a contiguous link path with the given demand.
  void add_flow(std::vector<net::LinkId> path_links, double demand_mbps);

  /// Run for `warmup_s + duration_s` simulated seconds; statistics cover
  /// the final `duration_s`. May be called once per simulator. Events are
  /// processed on the half-open interval [0, warmup_s + duration_s).
  SimReport run(double duration_s, double warmup_s = 0.5);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Region-parallel counterpart of TdmaSimulator: executes an Eq. 6 LP
/// schedule as a periodic TDMA frame, with links owned by the region of
/// their transmitter and hop-to-hop packet handoffs charged the uniform
/// latency_s. Certified slots never fail, so handoffs are the only
/// cross-region interaction. Same determinism guarantee as the CSMA
/// engine.
class ParallelTdmaSimulator {
 public:
  ParallelTdmaSimulator(const net::Network& network,
                        const core::InterferenceModel& model,
                        std::vector<core::ScheduledSet> schedule,
                        TdmaParams params, ShardParams shard,
                        std::uint64_t seed);
  ~ParallelTdmaSimulator();

  ParallelTdmaSimulator(const ParallelTdmaSimulator&) = delete;
  ParallelTdmaSimulator& operator=(const ParallelTdmaSimulator&) = delete;

  void add_flow(std::vector<net::LinkId> path_links, double demand_mbps);

  SimReport run(double duration_s, double warmup_s = 0.1);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrwsn::mac
