#include "mac/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mrwsn::mac {

GridPartition make_grid_partition(const net::Network& network,
                                  std::size_t grid_x, std::size_t grid_y) {
  MRWSN_REQUIRE(grid_x >= 1 && grid_y >= 1, "grid dimensions must be >= 1");
  MRWSN_REQUIRE(network.num_nodes() > 0, "cannot partition an empty network");

  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  for (const net::Node& node : network.nodes()) {
    min_x = std::min(min_x, node.position.x);
    max_x = std::max(max_x, node.position.x);
    min_y = std::min(min_y, node.position.y);
    max_y = std::max(max_y, node.position.y);
  }
  const double width = max_x - min_x;
  const double height = max_y - min_y;

  GridPartition part;
  part.grid_x = width > 0.0 ? grid_x : 1;
  part.grid_y = height > 0.0 ? grid_y : 1;
  part.region_of_node.resize(network.num_nodes());
  part.nodes_of_region.resize(part.grid_x * part.grid_y);

  for (const net::Node& node : network.nodes()) {
    std::size_t cx = 0, cy = 0;
    if (part.grid_x > 1) {
      cx = static_cast<std::size_t>((node.position.x - min_x) / width *
                                    static_cast<double>(part.grid_x));
      cx = std::min(cx, part.grid_x - 1);
    }
    if (part.grid_y > 1) {
      cy = static_cast<std::size_t>((node.position.y - min_y) / height *
                                    static_cast<double>(part.grid_y));
      cy = std::min(cy, part.grid_y - 1);
    }
    const std::size_t region = cy * part.grid_x + cx;
    part.region_of_node[node.id] = static_cast<std::uint32_t>(region);
    part.nodes_of_region[region].push_back(node.id);
  }
  // network.nodes() is ordered by id, so each region's list is ascending.
  return part;
}

GridPartition auto_grid_partition(const net::Network& network) {
  MRWSN_REQUIRE(network.num_nodes() > 0, "cannot partition an empty network");
  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  for (const net::Node& node : network.nodes()) {
    min_x = std::min(min_x, node.position.x);
    max_x = std::max(max_x, node.position.x);
    min_y = std::min(min_y, node.position.y);
    max_y = std::max(max_y, node.position.y);
  }
  const double cs = std::max(network.phy().carrier_sense_range(), 1.0);
  const auto cells = [cs](double extent) {
    const auto n = static_cast<std::size_t>(std::floor(extent / cs));
    return std::clamp<std::size_t>(n, 1, 16);
  };
  return make_grid_partition(network, cells(max_x - min_x),
                             cells(max_y - min_y));
}

}  // namespace mrwsn::mac
