#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/schedule.hpp"
#include "mac/csma.hpp"
#include "net/network.hpp"

namespace mrwsn::mac {

/// TDMA execution parameters.
struct TdmaParams {
  double frame_s = 0.02;          ///< period τ of the repeating schedule
  double phy_overhead_s = 20e-6;  ///< preamble + PLCP header per frame
  std::size_t payload_bits = 8192;
  std::size_t queue_limit = 500;  ///< per-link queue (frames)
};

/// Executes an Eq. 6 LP schedule as a periodic TDMA frame in virtual
/// time: every ScheduledSet becomes a slot of length time_share · frame_s
/// in which exactly its member links transmit, back to back, at their
/// scheduled rates. Packets flow hop by hop along configured flows.
///
/// This turns the paper's standing assumption — "a global optimal link
/// scheduling exists" — into an executable artifact: if the LP says a
/// flow set is feasible, the TDMA executor must deliver each flow's
/// demand packet by packet (up to per-packet PHY overhead), where a
/// contention MAC (CsmaSimulator) generally cannot.
///
/// Transmissions never fail here: the interference model already certified
/// every slot's concurrent set (verify_schedule is called on input).
class TdmaSimulator {
 public:
  TdmaSimulator(const net::Network& network,
                const core::InterferenceModel& model,
                std::vector<core::ScheduledSet> schedule, TdmaParams params,
                std::uint64_t seed);
  ~TdmaSimulator();

  TdmaSimulator(const TdmaSimulator&) = delete;
  TdmaSimulator& operator=(const TdmaSimulator&) = delete;

  /// Add a CBR flow along a contiguous link path.
  void add_flow(std::vector<net::LinkId> path_links, double demand_mbps);

  /// Run for warmup + duration simulated seconds; statistics cover the
  /// final `duration_s`. node_idle in the report is derived from the
  /// schedule geometry (a node is busy in a slot when it transmits,
  /// receives, or senses the slot's transmitters).
  SimReport run(double duration_s, double warmup_s = 0.1);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrwsn::mac
