#include "mac/tdma.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "mac/event_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mrwsn::mac {

struct TdmaSimulator::Impl {
  struct Packet {
    std::size_t flow = 0;
    std::size_t hop = 0;
    double created_at = 0.0;
  };

  struct FlowState {
    std::vector<net::LinkId> links;
    double demand_mbps = 0.0;
    double arrival_interval_s = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::vector<double> latencies_s;
  };

  /// One transmit opportunity for a link within the frame.
  struct Window {
    double offset_s = 0.0;  ///< start within the frame
    double length_s = 0.0;
    double rate_mbps = 0.0;
  };

  /// Per-link TDMA state: the queue and every window of the frame in
  /// which the link may transmit (a link can appear in several slots of
  /// an LP schedule, e.g. at 18 Mbps in a spatial-reuse slot and at 36
  /// alone).
  struct LinkState {
    std::deque<Packet> queue;
    std::vector<Window> windows;
    bool transmitting = false;
  };

  const net::Network& network;
  const core::InterferenceModel& model;
  std::vector<core::ScheduledSet> schedule;
  TdmaParams params;
  Rng rng;
  EventQueue queue;
  std::vector<FlowState> flows;
  std::vector<LinkState> links;
  std::vector<double> node_busy_fraction;  // static, from schedule geometry
  bool ran = false;
  double measure_start = 0.0;
  std::uint64_t data_transmissions = 0;

  Impl(const net::Network& net, const core::InterferenceModel& m,
       std::vector<core::ScheduledSet> sched, TdmaParams p, std::uint64_t seed)
      : network(net), model(m), schedule(std::move(sched)), params(p), rng(seed) {
    MRWSN_REQUIRE(params.frame_s > 0.0, "frame length must be positive");
    const core::ScheduleCheck check = core::verify_schedule(model, schedule);
    MRWSN_REQUIRE(check.valid, "refusing to execute an invalid schedule: " +
                                   check.issue);

    // Stretch the frame if needed so every scheduled link's slot fits at
    // least one whole packet — otherwise a thin slot would starve its link
    // (real TDMA would fragment frames instead).
    for (const core::ScheduledSet& entry : schedule) {
      for (std::size_t i = 0; i < entry.set.size(); ++i) {
        const double needed =
            1.05 * packet_airtime(entry.set.mbps[i]) / entry.time_share;
        params.frame_s = std::max(params.frame_s, needed);
      }
    }

    // Lay the slots out back to back inside the frame; links not covered
    // by any slot stay silent; a link scheduled in several slots gets one
    // window per slot.
    links.resize(network.num_links());
    double offset = 0.0;
    for (const core::ScheduledSet& entry : schedule) {
      const double length = entry.time_share * params.frame_s;
      for (std::size_t i = 0; i < entry.set.size(); ++i) {
        links[entry.set.links[i]].windows.push_back(
            Window{offset, length, entry.set.mbps[i]});
      }
      offset += length;
    }

    // Node busy fractions from the schedule geometry (same criterion as
    // the idle-time oracle).
    node_busy_fraction.assign(network.num_nodes(), 0.0);
    for (const core::ScheduledSet& entry : schedule) {
      for (net::NodeId n = 0; n < network.num_nodes(); ++n) {
        bool busy = false;
        double sensed = 0.0;
        for (net::LinkId id : entry.set.links) {
          const net::Link& link = network.link(id);
          if (link.tx == n || link.rx == n) {
            busy = true;
            break;
          }
          sensed += network.received_power(link.tx, n);
        }
        if (busy || sensed >= network.phy().cs_threshold_watt())
          node_busy_fraction[n] += entry.time_share;
      }
    }
  }

  double packet_airtime(double rate_mbps) const {
    return params.phy_overhead_s +
           static_cast<double>(params.payload_bits) / (rate_mbps * 1e6);
  }

  /// The window in which a whole packet can start at `now`, if any.
  const Window* usable_window(const LinkState& state, double now) const {
    const double frame_start = std::floor(now / params.frame_s) * params.frame_s;
    for (const Window& w : state.windows) {
      const double start = frame_start + w.offset_s;
      const double end = start + w.length_s;
      if (now >= start - 1e-12 &&
          now + packet_airtime(w.rate_mbps) <= end + 1e-12)
        return &w;
    }
    return nullptr;
  }

  /// Earliest window start strictly useful after `now`.
  double next_window_start(const LinkState& state, double now) const {
    const double frame_start = std::floor(now / params.frame_s) * params.frame_s;
    double best = std::numeric_limits<double>::infinity();
    for (const Window& w : state.windows) {
      double start = frame_start + w.offset_s;
      if (start <= now + 1e-12) start += params.frame_s;
      best = std::min(best, start);
    }
    return best;
  }

  void pump_link(net::LinkId id) {
    LinkState& state = links[id];
    if (state.transmitting || state.queue.empty() || state.windows.empty())
      return;
    const double now = queue.now();
    if (const Window* window = usable_window(state, now)) {
      state.transmitting = true;
      ++data_transmissions;
      queue.schedule_in(packet_airtime(window->rate_mbps),
                        [this, id] { finish_packet(id); });
    } else {
      // Wake at the next window start and re-check (the packet may not
      // fit at the tail of the current window). Duplicate wake-ups are
      // harmless: pump_link is idempotent on its state checks.
      const double wake = std::max(next_window_start(state, now), now + 1e-9);
      queue.schedule_at(wake, [this, id] { pump_link(id); });
    }
  }

  void finish_packet(net::LinkId id) {
    LinkState& state = links[id];
    MRWSN_ASSERT(state.transmitting && !state.queue.empty(),
                 "TDMA finished a packet that never started");
    state.transmitting = false;
    const Packet packet = state.queue.front();
    state.queue.pop_front();

    FlowState& flow = flows[packet.flow];
    if (packet.hop + 1 == flow.links.size()) {
      if (queue.now() >= measure_start) {
        ++flow.delivered;
        flow.latencies_s.push_back(queue.now() - packet.created_at);
      }
    } else {
      deliver_to_link(flow.links[packet.hop + 1],
                      Packet{packet.flow, packet.hop + 1, packet.created_at});
    }
    pump_link(id);
  }

  void deliver_to_link(net::LinkId id, Packet packet) {
    LinkState& state = links[id];
    if (state.queue.size() >= params.queue_limit) {
      if (queue.now() >= measure_start) ++flows[packet.flow].dropped;
      return;
    }
    state.queue.push_back(packet);
    pump_link(id);
  }

  void schedule_arrival(std::size_t flow_idx, double when) {
    queue.schedule_at(when, [this, flow_idx] {
      FlowState& flow = flows[flow_idx];
      if (queue.now() >= measure_start) ++flow.generated;
      deliver_to_link(flow.links.front(), Packet{flow_idx, 0, queue.now()});
      schedule_arrival(flow_idx, queue.now() + flow.arrival_interval_s);
    });
  }

  SimReport run(double duration_s, double warmup_s) {
    MRWSN_REQUIRE(!ran, "a TdmaSimulator can only run once");
    MRWSN_REQUIRE(duration_s > 0.0 && warmup_s >= 0.0, "invalid durations");
    ran = true;
    measure_start = warmup_s;
    for (std::size_t f = 0; f < flows.size(); ++f)
      schedule_arrival(f, rng.uniform(0.0, flows[f].arrival_interval_s));
    queue.run_until(warmup_s + duration_s);

    SimReport report;
    report.measured_s = duration_s;
    report.data_transmissions = data_transmissions;
    report.failed_receptions = 0;  // certified slots never fail
    for (net::NodeId n = 0; n < network.num_nodes(); ++n)
      report.node_idle.push_back(
          std::clamp(1.0 - node_busy_fraction[n], 0.0, 1.0));
    for (FlowState& flow : flows) {
      FlowStats stats;
      stats.offered_mbps = flow.demand_mbps;
      stats.delivered_mbps = static_cast<double>(flow.delivered) *
                             static_cast<double>(params.payload_bits) /
                             (duration_s * 1e6);
      stats.generated_packets = flow.generated;
      stats.delivered_packets = flow.delivered;
      stats.dropped_packets = flow.dropped;
      if (!flow.latencies_s.empty()) {
        std::sort(flow.latencies_s.begin(), flow.latencies_s.end());
        double sum = 0.0;
        for (double l : flow.latencies_s) sum += l;
        stats.mean_latency_s = sum / static_cast<double>(flow.latencies_s.size());
        stats.p95_latency_s =
            flow.latencies_s[(flow.latencies_s.size() - 1) * 95 / 100];
        stats.max_latency_s = flow.latencies_s.back();
      }
      report.flows.push_back(stats);
    }
    return report;
  }
};

TdmaSimulator::TdmaSimulator(const net::Network& network,
                             const core::InterferenceModel& model,
                             std::vector<core::ScheduledSet> schedule,
                             TdmaParams params, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(network, model, std::move(schedule), params,
                                   seed)) {}

TdmaSimulator::~TdmaSimulator() = default;

void TdmaSimulator::add_flow(std::vector<net::LinkId> path_links,
                             double demand_mbps) {
  MRWSN_REQUIRE(!path_links.empty(), "a flow needs at least one link");
  MRWSN_REQUIRE(demand_mbps > 0.0, "flow demand must be positive");
  for (std::size_t i = 0; i + 1 < path_links.size(); ++i) {
    MRWSN_REQUIRE(impl_->network.link(path_links[i]).rx ==
                      impl_->network.link(path_links[i + 1]).tx,
                  "flow links must form a contiguous path");
  }
  Impl::FlowState flow;
  flow.links = std::move(path_links);
  flow.demand_mbps = demand_mbps;
  flow.arrival_interval_s = static_cast<double>(impl_->params.payload_bits) /
                            (demand_mbps * 1e6);
  impl_->flows.push_back(std::move(flow));
}

SimReport TdmaSimulator::run(double duration_s, double warmup_s) {
  return impl_->run(duration_s, warmup_s);
}

}  // namespace mrwsn::mac
