#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"

namespace mrwsn::mac {

/// IEEE 802.11 DCF-style timing and framing parameters (defaults follow
/// 802.11a OFDM timing).
struct MacParams {
  double slot_time_s = 9e-6;
  double sifs_s = 16e-6;
  double difs_s = 34e-6;      ///< SIFS + 2 slots
  unsigned cw_min = 15;       ///< initial contention window (slots)
  unsigned cw_max = 1023;
  unsigned retry_limit = 7;   ///< drops the frame after this many failures
  double phy_overhead_s = 20e-6;  ///< preamble + PLCP header per frame
  double ack_duration_s = 32e-6;  ///< ACK airtime incl. preamble
  std::size_t payload_bits = 8192;  ///< 1024-byte data frames
  std::size_t queue_limit = 200;    ///< per-node interface queue (frames)

  /// RTS/CTS virtual carrier sensing: the exchange becomes
  /// RTS -> SIFS -> CTS -> SIFS -> DATA -> SIFS -> ACK, and every third
  /// node that decodes the RTS or CTS (received power above the base
  /// rate's sensitivity) defers via NAV until the exchange ends — the
  /// classic hidden-terminal countermeasure, bought with control-frame
  /// overhead. Off by default.
  bool enable_rts_cts = false;
  double rts_duration_s = 28e-6;
  double cts_duration_s = 28e-6;

  /// ARF-style per-link rate adaptation: after `arf_down_after`
  /// consecutive failures the link steps one rate down; after
  /// `arf_up_after` consecutive successes it probes one rate up (never
  /// past what the link's received power supports). Off by default: each
  /// link then always uses its maximum lone rate.
  bool enable_arf = false;
  unsigned arf_up_after = 10;
  unsigned arf_down_after = 2;
};

/// Per-flow outcome of a simulation run (measurement window only).
struct FlowStats {
  double offered_mbps = 0.0;    ///< configured demand
  double delivered_mbps = 0.0;  ///< end-to-end goodput
  std::uint64_t generated_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;  ///< retry-limit or queue-overflow drops
  double mean_latency_s = 0.0;  ///< source-to-destination, delivered packets
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
};

/// Everything a run reports.
struct SimReport {
  double measured_s = 0.0;          ///< measurement window length
  std::vector<double> node_idle;    ///< carrier-sensed idle ratio per node
  std::vector<FlowStats> flows;
  std::uint64_t data_transmissions = 0;
  std::uint64_t failed_receptions = 0;   ///< DATA frames lost to SINR/collision
  std::uint64_t control_failures = 0;    ///< RTS/CTS frames lost (RTS/CTS mode)
};

/// A packet-level CSMA/CA (DCF) simulator over a net::Network: carrier
/// sensing against the PHY's carrier-sense threshold, DIFS + binary
/// exponential backoff, DATA/ACK exchange, SINR-based reception with
/// cumulative interference, multihop forwarding along configured flow
/// paths, and per-node busy/idle accounting.
///
/// Its role in this repository is Section 4's *measured* channel idle
/// ratio: an on-air counterpart to core::schedule_idle_ratios. It is not
/// meant to reproduce the LP's optimal schedules (DCF cannot; that gap is
/// precisely the paper's Scenario I observation). Each link transmits at
/// its maximum lone rate; RTS/CTS is not modelled.
class CsmaSimulator {
 public:
  CsmaSimulator(const net::Network& network, MacParams params,
                std::uint64_t seed);
  ~CsmaSimulator();

  CsmaSimulator(const CsmaSimulator&) = delete;
  CsmaSimulator& operator=(const CsmaSimulator&) = delete;

  /// Add a CBR flow along a contiguous link path with the given demand.
  void add_flow(std::vector<net::LinkId> path_links, double demand_mbps);

  /// Run for `warmup_s + duration_s` simulated seconds; statistics cover
  /// only the final `duration_s`. May be called once per simulator.
  SimReport run(double duration_s, double warmup_s = 0.5);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrwsn::mac
