#include "mac/parallel_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <limits>

#include "mac/event_queue.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mrwsn::mac {

namespace {

constexpr EventId kNoEvent = std::numeric_limits<EventId>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

/// Same-timestamp class order (EventKey::klass). Evaluations run before
/// simultaneous signal edges (a signal arriving exactly when a frame ends
/// does not interfere with it), signal edges before frame starts (a frame
/// registration must see its own signal already in the receiver's view),
/// and those before timers and traffic arrivals.
constexpr std::uint32_t kEvalClass = 0;
constexpr std::uint32_t kSignalClass = 1;
constexpr std::uint32_t kStartClass = 2;
constexpr std::uint32_t kTimerClass = 3;
constexpr std::uint32_t kArrivalClass = 4;

enum class MsgType : std::uint8_t {
  kSignalOn,    ///< a transmission becomes audible at `target`
  kSignalOff,   ///< it stops being audible (may carry a NAV reservation)
  kFrameStart,  ///< a tracked frame (DATA/RTS/CTS) addressed to `target`
  kAckArrive,   ///< the receiver's ACK reached the transmitter
  kHandoff,     ///< TDMA: a packet reaches the next hop's link queue
};

enum class FrameKind : std::uint8_t { kData, kRts, kCts };

/// A time-stamped cross-node effect. Sized so that {owner pointer,
/// Message} fits SmallFn's inline buffer: applying a message never
/// allocates. Field reuse by type:
///   kSignalOn:   a = received power at target
///   kSignalOff:  a = NAV reservation end (0 = none), b = received power
///   kFrameStart: a = created_at (DATA) / planned DATA airtime (RTS),
///                b = received signal power; link/flow/hop/rate as named
///   kHandoff:    a = created_at; target is a link id, not a node id
struct Message {
  double effect_s = 0.0;
  double a = 0.0;
  double b = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t origin = 0;
  std::uint32_t target = 0;
  std::uint32_t link = 0;
  std::uint32_t flow = 0;
  std::uint32_t hop = 0;
  MsgType type = MsgType::kSignalOn;
  FrameKind kind = FrameKind::kData;
  std::uint8_t rate = 0;
};
static_assert(sizeof(Message) + sizeof(void*) <= SmallFn::kInlineBytes,
              "message handlers must fit the inline callback buffer");

std::uint32_t class_of(MsgType type) {
  switch (type) {
    case MsgType::kSignalOn:
    case MsgType::kSignalOff:
      return kSignalClass;
    case MsgType::kFrameStart:
      return kStartClass;
    case MsgType::kAckArrive:
    case MsgType::kHandoff:
      return kEvalClass;
  }
  return kTimerClass;
}

/// Per-region, per-flow tallies, merged commutatively (integers) or after
/// sorting (latencies) so the merge order never shows in the report.
struct FlowTally {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::vector<double> latencies_s;
};

/// The conservative-synchronization runtime shared by both sharded
/// simulators: one EventQueue per region, a persistent worker pool, and
/// double-buffered per-(src,dst) outboxes exchanged at window barriers.
///
/// The lookahead invariant: every message's effect time is at least its
/// emission time + latency, and windows are at most `latency` long, so a
/// message emitted inside window [w, wend) takes effect at or after wend —
/// delivering at the *next* window's start can never be late. Windows are
/// half-open (EventQueue::run_before), so an event landing exactly on a
/// barrier always executes after it, in full (time, key) order against the
/// messages the barrier delivered — which is what makes results identical
/// for every grid shape.
///
/// Owner must provide:
///   std::uint32_t target_region(const Message&) const;
///   void handle(const Message&);
template <typename Owner>
class ShardCore {
 public:
  ShardCore(Owner& owner, std::size_t regions, std::size_t threads,
            double latency_s)
      : owner_(owner),
        regions_(regions),
        latency_(latency_s),
        pool_(threads),
        queues_(regions),
        outbox_(regions * regions),
        min_emit_(regions, {kInf, kInf}),
        next_times_(regions, kInf) {
    MRWSN_REQUIRE(latency_ > 0.0, "cross-node latency must be positive");
    task_ = [this](std::size_t worker) {
      const auto [lo, hi] = pool_.block(worker, regions_);
      for (std::size_t r = lo; r < hi; ++r) run_region(r);
    };
  }

  std::size_t regions() const { return regions_; }
  EventQueue& queue_of(std::size_t region) { return queues_[region]; }
  double now_of(std::size_t region) const { return queues_[region].now(); }

  /// Schedule `msg` into its destination region's queue. Only safe from
  /// the destination region's own task (or serial phases).
  void apply(const Message& msg) {
    Owner* owner = &owner_;
    const Message m = msg;
    queues_[owner_.target_region(m)].schedule_at(
        m.effect_s, EventKey{class_of(m.type), m.origin, m.seq},
        [owner, m] { owner->handle(m); });
  }

  /// Emit `msg` from region `src`'s task: applied directly when the
  /// destination is local, else parked in the outbox for delivery at the
  /// next window barrier. Both paths produce the same event key and
  /// effect time, so locality never shows in the execution order.
  void post(std::uint32_t src, const Message& msg) {
    const std::uint32_t dst = owner_.target_region(msg);
    if (dst == src) {
      apply(msg);
      return;
    }
    outbox_[src * regions_ + dst][parity_].push_back(msg);
    min_emit_[src][parity_] = std::min(min_emit_[src][parity_], msg.effect_s);
  }

  /// Advance every region through the half-open interval [cursor,
  /// boundary), window by window, jumping idle gaps (the minimum over all
  /// pending event and in-flight message times bounds the next window
  /// start from below).
  void run_to(double boundary) {
    while (cursor_ < boundary) {
      wend_ = std::min(cursor_ + latency_, boundary);
      parity_ = window_ & 1;
      pool_.run(task_);
      ++window_;
      double tnext = kInf;
      for (std::size_t r = 0; r < regions_; ++r) {
        tnext = std::min(tnext, next_times_[r]);
        tnext = std::min(tnext, min_emit_[r][parity_]);
      }
      cursor_ = std::max(wend_, std::min(tnext, boundary));
    }
  }

  util::WorkerPool& pool() { return pool_; }

 private:
  void run_region(std::size_t r) {
    min_emit_[r][parity_] = kInf;
    // Deliver messages parked during the previous window (opposite
    // parity), in fixed source-region order: deterministic, and already
    // parallel across destinations because each task drains its own row.
    for (std::size_t src = 0; src < regions_; ++src) {
      std::vector<Message>& box = outbox_[src * regions_ + r][parity_ ^ 1];
      for (const Message& m : box) apply(m);
      box.clear();
    }
    queues_[r].run_before(wend_);
    next_times_[r] = queues_[r].next_time();
  }

  Owner& owner_;
  std::size_t regions_;
  double latency_;
  util::WorkerPool pool_;
  std::vector<EventQueue> queues_;
  std::vector<std::array<std::vector<Message>, 2>> outbox_;  // [src*R+dst]
  std::vector<std::array<double, 2>> min_emit_;              // by src region
  std::vector<double> next_times_;                           // by region
  std::function<void(std::size_t)> task_;
  std::uint64_t window_ = 0;
  std::size_t parity_ = 0;
  double cursor_ = 0.0;
  double wend_ = 0.0;
};

/// Per-node RNG stream: draws are tied to the drawing node, not to global
/// event order, so any partitioning sees the same sequences.
Rng node_stream(std::uint64_t seed, std::uint64_t n) {
  return Rng(SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * (n + 1))).next());
}

struct FlowSpec {
  std::vector<net::LinkId> links;
  double demand_mbps = 0.0;
  double arrival_interval_s = 0.0;
};

void check_flow_path(const net::Network& network,
                     const std::vector<net::LinkId>& path, double demand) {
  MRWSN_REQUIRE(!path.empty(), "a flow needs at least one link");
  MRWSN_REQUIRE(demand > 0.0, "flow demand must be positive");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    MRWSN_REQUIRE(network.link(path[i]).rx == network.link(path[i + 1]).tx,
                  "flow links must form a contiguous path");
  }
}

/// Merge per-region tallies into FlowStats. Integer sums commute;
/// latencies are concatenated in region order and sorted, so the merged
/// statistics are independent of the partitioning.
std::vector<FlowStats> merge_flow_tallies(
    const std::vector<FlowSpec>& flows,
    std::vector<std::vector<FlowTally>>& tallies, double duration_s,
    std::size_t payload_bits) {
  std::vector<FlowStats> out;
  out.reserve(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    FlowStats stats;
    stats.offered_mbps = flows[f].demand_mbps;
    std::vector<double> latencies;
    for (std::vector<FlowTally>& region : tallies) {
      stats.generated_packets += region[f].generated;
      stats.delivered_packets += region[f].delivered;
      stats.dropped_packets += region[f].dropped;
      latencies.insert(latencies.end(), region[f].latencies_s.begin(),
                       region[f].latencies_s.end());
    }
    stats.delivered_mbps = static_cast<double>(stats.delivered_packets) *
                           static_cast<double>(payload_bits) /
                           (duration_s * 1e6);
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      double sum = 0.0;
      for (double l : latencies) sum += l;
      stats.mean_latency_s = sum / static_cast<double>(latencies.size());
      stats.p95_latency_s = latencies[(latencies.size() - 1) * 95 / 100];
      stats.max_latency_s = latencies.back();
    }
    out.push_back(stats);
  }
  return out;
}

GridPartition resolve_partition(const net::Network& network,
                                const ShardParams& shard) {
  if (shard.grid_x == 0 || shard.grid_y == 0)
    return auto_grid_partition(network);
  return make_grid_partition(network, shard.grid_x, shard.grid_y);
}

}  // namespace

// ===================================================================
// ParallelCsmaSimulator
// ===================================================================

struct ParallelCsmaSimulator::Impl {
  struct Packet {
    std::uint32_t flow = 0;
    std::uint32_t hop = 0;
    double created_at = 0.0;
  };

  /// A frame in flight towards this node, awaiting its end-of-frame
  /// evaluation. max_interference is maintained incrementally from the
  /// node's signal view as new signals arrive.
  struct Reception {
    std::uint32_t from = 0;
    FrameKind kind = FrameKind::kData;
    std::uint32_t link = 0;
    std::uint8_t rate = 0;
    bool corrupted = false;
    Packet packet;
    double planned_data_s = 0.0;  ///< RTS only
    double signal_watt = 0.0;
    double max_interference_watt = 0.0;
  };

  enum class MacState { kIdle, kContending, kTransmitting, kAwaitingAck };

  struct NodeState {
    std::deque<Packet> queue;
    MacState state = MacState::kIdle;
    unsigned cw = 0;
    unsigned retries = 0;
    int backoff_slots = -1;  ///< -1: not drawn for the current frame
    EventId timer = kNoEvent;           ///< DIFS+backoff countdown
    EventId response_timer = kNoEvent;  ///< CTS/ACK timeout
    double countdown_started = 0.0;
    bool sensed_busy = false;
    double nav_until = 0.0;
    double busy_accum = 0.0;
    double busy_since = -1.0;
    /// Incremental channel view: sum of currently audible foreign
    /// signals. Reset to exactly 0 when the count drains so float drift
    /// cannot accumulate across quiet periods.
    double view_power = 0.0;
    std::uint32_t view_count = 0;
    std::uint32_t own_on_air = 0;  ///< own frames on the air (any kind)
    std::vector<Reception> pending;
    std::uint64_t seq = 0;  ///< event-key sequence for this origin
    Rng rng{0};
  };

  struct ArfState {
    phy::RateIndex rate = 0;
    unsigned successes = 0;
    unsigned failures = 0;
  };

  struct Neighbor {
    std::uint32_t node = 0;
    double power = 0.0;  ///< received power at `node` from the row's owner
  };

  struct RegionStats {
    std::uint64_t data_transmissions = 0;
    std::uint64_t failed_receptions = 0;
    std::uint64_t control_failures = 0;
  };

  const net::Network& network;
  MacParams params;
  ShardParams shard;
  std::uint64_t seed;
  GridPartition part;
  ShardCore<Impl> core;

  std::vector<FlowSpec> flows;
  std::vector<NodeState> nodes;
  std::vector<ArfState> arf;               // by link id; owner: link.tx
  std::vector<double> link_rx_power;       // by link id
  std::vector<double> rate_airtime;        // DATA airtime by rate index
  std::vector<Neighbor> neighbors;         // CSR payload
  std::vector<std::uint32_t> neighbor_start;  // CSR offsets, size N+1
  std::vector<std::vector<FlowTally>> tallies;  // [region][flow]
  std::vector<RegionStats> stats;               // [region]
  double base_sensitivity = 0.0;
  double cs_threshold = 0.0;
  double measure_start = 0.0;
  bool ran = false;

  Impl(const net::Network& net, MacParams p, ShardParams s, std::uint64_t sd)
      : network(net),
        params(p),
        shard(s),
        seed(sd),
        part(resolve_partition(net, s)),
        core(*this, part.num_regions(), s.threads, s.latency_s) {
    const std::size_t n = network.num_nodes();
    nodes.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes[i].cw = params.cw_min;
      nodes[i].rng = node_stream(seed, i);
    }
    arf.resize(network.num_links());
    link_rx_power.resize(network.num_links());
    for (net::LinkId id = 0; id < network.num_links(); ++id) {
      arf[id].rate = network.link(id).best_rate_alone;
      link_rx_power[id] =
          network.received_power(network.link(id).tx, network.link(id).rx);
    }
    const phy::RateTable& rates = network.phy().rates();
    rate_airtime.resize(rates.size());
    for (phy::RateIndex r = 0; r < rates.size(); ++r) {
      rate_airtime[r] = params.phy_overhead_s +
                        static_cast<double>(params.payload_bits) /
                            (rates[r].mbps * 1e6);
    }
    base_sensitivity = rates.rates().back().rx_sensitivity_watt;
    cs_threshold = network.phy().cs_threshold_watt();
    stats.resize(part.num_regions());

    // Interaction neighborhoods: everyone whose view a transmission by
    // `i` can measurably move. Identical for every partitioning, so the
    // cutoff never breaks determinism.
    const double floor_watt =
        shard.interaction_floor * network.phy().noise_watt();
    neighbor_start.assign(n + 1, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      neighbor_start[i] = static_cast<std::uint32_t>(neighbors.size());
      for (std::uint32_t m = 0; m < n; ++m) {
        if (m == i) continue;
        const double power = network.received_power(i, m);
        if (power >= floor_watt)
          neighbors.push_back(Neighbor{m, power});
      }
    }
    neighbor_start[n] = static_cast<std::uint32_t>(neighbors.size());
  }

  // ------------------------------------------------------- shard glue
  std::uint32_t target_region(const Message& msg) const {
    return part.region_of_node[msg.target];
  }

  double now_at(std::uint32_t n) const {
    return core.now_of(part.region_of_node[n]);
  }

  EventQueue& queue_at(std::uint32_t n) {
    return core.queue_of(part.region_of_node[n]);
  }

  RegionStats& stats_at(std::uint32_t n) {
    return stats[part.region_of_node[n]];
  }

  FlowTally& tally_at(std::uint32_t n, std::uint32_t flow) {
    return tallies[part.region_of_node[n]][flow];
  }

  // ------------------------------------------------------- emissions
  void emit_signal_on(std::uint32_t n, double now) {
    const double effect = now + shard.latency_s;
    const std::uint32_t src = part.region_of_node[n];
    for (std::uint32_t i = neighbor_start[n]; i < neighbor_start[n + 1]; ++i) {
      Message msg;
      msg.type = MsgType::kSignalOn;
      msg.effect_s = effect;
      msg.origin = n;
      msg.seq = nodes[n].seq++;
      msg.target = neighbors[i].node;
      msg.a = neighbors[i].power;
      core.post(src, msg);
    }
  }

  /// `nav_until` > 0 reserves the channel at third parties that can
  /// decode the ending frame (power above the base rate's sensitivity);
  /// `exclude` (the addressed peer) never gets the reservation.
  void emit_signal_off(std::uint32_t n, double now, double nav_until,
                       std::uint32_t exclude) {
    const double effect = now + shard.latency_s;
    const std::uint32_t src = part.region_of_node[n];
    for (std::uint32_t i = neighbor_start[n]; i < neighbor_start[n + 1]; ++i) {
      const Neighbor& nb = neighbors[i];
      Message msg;
      msg.type = MsgType::kSignalOff;
      msg.effect_s = effect;
      msg.origin = n;
      msg.seq = nodes[n].seq++;
      msg.target = nb.node;
      msg.b = nb.power;
      if (nav_until > 0.0 && nb.node != exclude &&
          nb.power >= base_sensitivity) {
        msg.a = nav_until;
      }
      core.post(src, msg);
    }
  }

  void emit_frame_start(std::uint32_t n, double now, FrameKind kind,
                        std::uint32_t rx, std::uint32_t link,
                        std::uint8_t rate, double a, const Packet* packet) {
    Message msg;
    msg.type = MsgType::kFrameStart;
    msg.kind = kind;
    msg.effect_s = now + shard.latency_s;
    msg.origin = n;
    msg.seq = nodes[n].seq++;
    msg.target = rx;
    msg.link = link;
    msg.rate = rate;
    msg.a = a;
    msg.b = power_between(n, rx);
    if (packet != nullptr) {
      msg.flow = packet->flow;
      msg.hop = packet->hop;
      msg.a = packet->created_at;
    }
    core.post(part.region_of_node[n], msg);
  }

  /// Received power at `to` from `from` — the cached neighborhood value
  /// when present (bit-identical to what SignalOn/Off deliver), the PHY
  /// directly for sub-floor pairs.
  double power_between(std::uint32_t from, std::uint32_t to) const {
    const Neighbor* lo = neighbors.data() + neighbor_start[from];
    const Neighbor* hi = neighbors.data() + neighbor_start[from + 1];
    const Neighbor* it = std::lower_bound(
        lo, hi, to,
        [](const Neighbor& nb, std::uint32_t node) { return nb.node < node; });
    if (it != hi && it->node == to) return it->power;
    return network.received_power(from, to);
  }

  // ------------------------------------------------------- rate logic
  phy::RateIndex current_rate(net::LinkId link) const {
    return params.enable_arf ? arf[link].rate
                             : network.link(link).best_rate_alone;
  }

  void arf_on_success(net::LinkId link) {
    if (!params.enable_arf) return;
    ArfState& state = arf[link];
    state.failures = 0;
    if (++state.successes >= params.arf_up_after) {
      state.successes = 0;
      if (state.rate > network.link(link).best_rate_alone) --state.rate;
    }
  }

  void arf_on_failure(net::LinkId link) {
    if (!params.enable_arf) return;
    ArfState& state = arf[link];
    state.successes = 0;
    if (++state.failures >= params.arf_down_after) {
      state.failures = 0;
      if (state.rate + 1 < network.phy().rates().size()) ++state.rate;
    }
  }

  const net::Link& head_link(std::uint32_t n) const {
    const Packet& packet = nodes[n].queue.front();
    return network.link(flows[packet.flow].links[packet.hop]);
  }

  double data_airtime(net::LinkId link) const {
    return rate_airtime[current_rate(link)];
  }

  // --------------------------------------------------- channel sensing
  /// Re-derive the node's busy flag after anything that feeds it changed;
  /// on an edge, account busy time and freeze/resume the backoff.
  void evaluate(std::uint32_t n) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    const bool busy = node.state == MacState::kTransmitting ||
                      node.own_on_air > 0 || now < node.nav_until ||
                      node.view_power >= cs_threshold;
    if (busy == node.sensed_busy) return;
    node.sensed_busy = busy;
    if (busy) {
      node.busy_since = now;
    } else if (node.busy_since >= 0.0) {
      node.busy_accum += now - node.busy_since;
      node.busy_since = -1.0;
    }
    if (node.state != MacState::kContending) return;
    if (busy) {
      freeze_countdown(n);
    } else if (node.timer == kNoEvent) {
      start_countdown(n);
    }
  }

  void set_nav(std::uint32_t n, double until) {
    NodeState& node = nodes[n];
    if (until <= node.nav_until) return;
    node.nav_until = until;
    queue_at(n).schedule_at(until, EventKey{kTimerClass, n, node.seq++},
                            [this, n] { evaluate(n); });
  }

  /// Own transmission begins: it corrupts anything this node was
  /// receiving and pins the channel busy.
  void start_own_transmission(std::uint32_t n) {
    NodeState& node = nodes[n];
    ++node.own_on_air;
    for (Reception& rec : node.pending) rec.corrupted = true;
    evaluate(n);
  }

  // ----------------------------------------------------- MAC machine
  void maybe_start_contention(std::uint32_t n) {
    NodeState& node = nodes[n];
    if (node.state != MacState::kIdle || node.queue.empty()) return;
    node.state = MacState::kContending;
    if (node.backoff_slots < 0)
      node.backoff_slots = static_cast<int>(node.rng.uniform_int(0, node.cw));
    if (!node.sensed_busy) start_countdown(n);
  }

  void start_countdown(std::uint32_t n) {
    NodeState& node = nodes[n];
    MRWSN_ASSERT(node.state == MacState::kContending,
                 "countdown outside contention");
    const double now = now_at(n);
    node.countdown_started = now;
    const double wait = params.difs_s +
                        static_cast<double>(node.backoff_slots) *
                            params.slot_time_s;
    node.timer = queue_at(n).schedule_at(
        now + wait, EventKey{kTimerClass, n, node.seq++}, [this, n] {
          nodes[n].timer = kNoEvent;
          begin_data(n);
        });
  }

  void freeze_countdown(std::uint32_t n) {
    NodeState& node = nodes[n];
    if (node.timer == kNoEvent) return;
    queue_at(n).cancel(node.timer);
    node.timer = kNoEvent;
    const double elapsed =
        now_at(n) - node.countdown_started - params.difs_s;
    if (elapsed > 0.0) {
      const int done = static_cast<int>(elapsed / params.slot_time_s);
      node.backoff_slots = std::max(0, node.backoff_slots - done);
    }
  }

  void begin_data(std::uint32_t n) {
    NodeState& node = nodes[n];
    MRWSN_ASSERT(node.state == MacState::kContending,
                 "transmit outside contention");
    MRWSN_ASSERT(!node.queue.empty(), "transmit with empty queue");
    node.backoff_slots = -1;
    if (params.enable_rts_cts) {
      begin_rts(n);
    } else {
      transmit_data(n);
    }
  }

  void transmit_data(std::uint32_t n) {
    NodeState& node = nodes[n];
    MRWSN_ASSERT(!node.queue.empty(), "transmit with empty queue");
    const Packet packet = node.queue.front();
    const net::Link& link = head_link(n);
    MRWSN_ASSERT(link.tx == n, "packet queued at the wrong node");
    const double now = now_at(n);
    const auto rate = static_cast<std::uint8_t>(current_rate(link.id));
    const double duration = rate_airtime[rate];

    node.state = MacState::kTransmitting;
    ++stats_at(n).data_transmissions;
    start_own_transmission(n);
    emit_signal_on(n, now);
    emit_frame_start(n, now, FrameKind::kData,
                     static_cast<std::uint32_t>(link.rx), link.id, rate, 0.0,
                     &packet);
    queue_at(n).schedule_at(now + duration,
                            EventKey{kTimerClass, n, node.seq++},
                            [this, n] { data_tx_end(n); });
  }

  void data_tx_end(std::uint32_t n) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    --node.own_on_air;
    node.state = MacState::kAwaitingAck;
    evaluate(n);
    emit_signal_off(n, now, 0.0, kNoNode);
    // The ACK (if any) arrives at now + 2*latency + SIFS + ACK airtime;
    // one slot of margin, as in the sequential model.
    const double timeout = 2.0 * shard.latency_s + params.sifs_s +
                           params.ack_duration_s + params.slot_time_s;
    node.response_timer = queue_at(n).schedule_at(
        now + timeout, EventKey{kTimerClass, n, node.seq++}, [this, n] {
          nodes[n].response_timer = kNoEvent;
          handle_ack_timeout(n);
        });
  }

  // ------------------------------------------------------------ RTS/CTS
  std::uint8_t base_rate() const {
    return static_cast<std::uint8_t>(network.phy().rates().size() - 1);
  }

  void begin_rts(std::uint32_t n) {
    NodeState& node = nodes[n];
    const net::Link& link = head_link(n);
    const double now = now_at(n);
    const double data_s = data_airtime(link.id);
    node.state = MacState::kTransmitting;
    start_own_transmission(n);
    emit_signal_on(n, now);
    emit_frame_start(n, now, FrameKind::kRts,
                     static_cast<std::uint32_t>(link.rx), link.id,
                     base_rate(), data_s, nullptr);
    queue_at(n).schedule_at(
        now + params.rts_duration_s, EventKey{kTimerClass, n, node.seq++},
        [this, n, rx = static_cast<std::uint32_t>(link.rx), data_s] {
          rts_tx_end(n, rx, data_s);
        });
  }

  void rts_tx_end(std::uint32_t n, std::uint32_t rx, double data_s) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    --node.own_on_air;
    node.state = MacState::kAwaitingAck;  // waiting for the CTS
    evaluate(n);
    // Full exchange from the RTS end: CTS after latency+SIFS, DATA after
    // another latency+SIFS, ACK after a third round trip.
    const double exchange_end = now + 3.0 * shard.latency_s +
                                3.0 * params.sifs_s + params.cts_duration_s +
                                data_s + params.ack_duration_s;
    emit_signal_off(n, now, exchange_end, rx);
    const double timeout = 2.0 * shard.latency_s + params.sifs_s +
                           params.cts_duration_s + params.slot_time_s;
    node.response_timer = queue_at(n).schedule_at(
        now + timeout, EventKey{kTimerClass, n, node.seq++}, [this, n] {
          nodes[n].response_timer = kNoEvent;
          handle_ack_timeout(n);
        });
  }

  void cts_send(std::uint32_t n, std::uint32_t initiator, double data_s) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    start_own_transmission(n);
    emit_signal_on(n, now);
    emit_frame_start(n, now, FrameKind::kCts, initiator, 0, base_rate(),
                     data_s, nullptr);
    queue_at(n).schedule_at(
        now + params.cts_duration_s, EventKey{kTimerClass, n, node.seq++},
        [this, n, initiator, data_s] { cts_tx_end(n, initiator, data_s); });
  }

  void cts_tx_end(std::uint32_t n, std::uint32_t initiator, double data_s) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    --node.own_on_air;
    evaluate(n);
    const double nav_until = now + 2.0 * shard.latency_s +
                             2.0 * params.sifs_s + data_s +
                             params.ack_duration_s;
    emit_signal_off(n, now, nav_until, initiator);
  }

  // ------------------------------------------------------ ACK exchange
  void ack_send(std::uint32_t n, std::uint32_t initiator, Packet packet) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    start_own_transmission(n);
    emit_signal_on(n, now);
    queue_at(n).schedule_at(
        now + params.ack_duration_s, EventKey{kTimerClass, n, node.seq++},
        [this, n, initiator, packet] { ack_end(n, initiator, packet); });
  }

  void ack_end(std::uint32_t n, std::uint32_t initiator, Packet packet) {
    NodeState& node = nodes[n];
    const double now = now_at(n);
    --node.own_on_air;
    evaluate(n);
    emit_signal_off(n, now, 0.0, kNoNode);
    Message msg;
    msg.type = MsgType::kAckArrive;
    msg.effect_s = now + shard.latency_s;
    msg.origin = n;
    msg.seq = node.seq++;
    msg.target = initiator;
    core.post(part.region_of_node[n], msg);
    // The receiver owns the delivered packet: count or forward it here.
    if (packet.hop + 1 == flows[packet.flow].links.size()) {
      if (now >= measure_start) {
        FlowTally& tally = tally_at(n, packet.flow);
        ++tally.delivered;
        tally.latencies_s.push_back(now - packet.created_at);
      }
    } else {
      enqueue_packet(n, Packet{packet.flow, packet.hop + 1,
                               packet.created_at});
    }
  }

  void complete_success(std::uint32_t n) {
    NodeState& node = nodes[n];
    MRWSN_ASSERT(node.state == MacState::kAwaitingAck, "stray ACK completion");
    MRWSN_ASSERT(!node.queue.empty(), "ACKed a frame that left the queue");
    arf_on_success(head_link(n).id);
    node.queue.pop_front();
    node.state = MacState::kIdle;
    node.retries = 0;
    node.cw = params.cw_min;
    maybe_start_contention(n);
  }

  void handle_ack_timeout(std::uint32_t n) {
    NodeState& node = nodes[n];
    MRWSN_ASSERT(node.state == MacState::kAwaitingAck, "stray ACK timeout");
    node.state = MacState::kIdle;
    MRWSN_ASSERT(!node.queue.empty(), "timeout with an empty queue");
    arf_on_failure(head_link(n).id);
    ++node.retries;
    if (node.retries > params.retry_limit) {
      const Packet packet = node.queue.front();
      node.queue.pop_front();
      if (now_at(n) >= measure_start) ++tally_at(n, packet.flow).dropped;
      node.retries = 0;
      node.cw = params.cw_min;
    } else {
      node.cw = std::min(2 * (node.cw + 1) - 1, params.cw_max);
    }
    maybe_start_contention(n);
  }

  // --------------------------------------------------- message handlers
  void handle(const Message& msg) {
    switch (msg.type) {
      case MsgType::kSignalOn:
        on_signal_on(msg);
        return;
      case MsgType::kSignalOff:
        on_signal_off(msg);
        return;
      case MsgType::kFrameStart:
        on_frame_start(msg);
        return;
      case MsgType::kAckArrive:
        on_ack_arrive(msg);
        return;
      case MsgType::kHandoff:
        MRWSN_ASSERT(false, "handoff message in a CSMA simulation");
        return;
    }
  }

  void on_signal_on(const Message& msg) {
    NodeState& node = nodes[msg.target];
    node.view_power += msg.a;
    ++node.view_count;
    for (Reception& rec : node.pending) {
      // The subtraction can dip a hair below zero from accumulated
      // rounding in view_power when the frame's own signal dominates the
      // sum; clamp — the residue is pure float drift, not interference.
      rec.max_interference_watt =
          std::max(rec.max_interference_watt,
                   std::max(0.0, node.view_power - rec.signal_watt));
    }
    evaluate(msg.target);
  }

  void on_signal_off(const Message& msg) {
    NodeState& node = nodes[msg.target];
    node.view_power -= msg.b;
    if (--node.view_count == 0) node.view_power = 0.0;
    if (msg.a > 0.0 && node.own_on_air == 0) set_nav(msg.target, msg.a);
    evaluate(msg.target);
  }

  void on_frame_start(const Message& msg) {
    NodeState& node = nodes[msg.target];
    Reception rec;
    rec.from = msg.origin;
    rec.kind = msg.kind;
    rec.link = msg.link;
    rec.rate = msg.rate;
    rec.signal_watt = msg.b;
    rec.max_interference_watt = std::max(0.0, node.view_power - msg.b);
    rec.corrupted =
        node.state == MacState::kTransmitting || node.own_on_air > 0;
    if (msg.kind == FrameKind::kData) {
      rec.packet = Packet{msg.flow, msg.hop, msg.a};
    } else if (msg.kind == FrameKind::kRts) {
      rec.planned_data_s = msg.a;
    }
    node.pending.push_back(rec);

    double airtime = 0.0;
    switch (msg.kind) {
      case FrameKind::kData:
        airtime = rate_airtime[msg.rate];
        break;
      case FrameKind::kRts:
        airtime = params.rts_duration_s;
        break;
      case FrameKind::kCts:
        airtime = params.cts_duration_s;
        break;
    }
    const double when = now_at(msg.target) + airtime;
    queue_at(msg.target)
        .schedule_at(when, EventKey{kEvalClass, msg.origin, msg.seq},
                     [this, target = msg.target, origin = msg.origin,
                      kind = msg.kind] { eval_reception(target, origin, kind); });
  }

  void eval_reception(std::uint32_t n, std::uint32_t origin, FrameKind kind) {
    NodeState& node = nodes[n];
    const auto it = std::find_if(node.pending.begin(), node.pending.end(),
                                 [&](const Reception& r) {
                                   return r.from == origin && r.kind == kind;
                                 });
    MRWSN_ASSERT(it != node.pending.end(),
                 "evaluating a reception that was never registered");
    const Reception rec = *it;
    node.pending.erase(it);

    const phy::PhyModel& phy = network.phy();
    const phy::Rate& rate = phy.rates()[rec.rate];
    const bool ok = !rec.corrupted &&
                    rec.signal_watt >= rate.rx_sensitivity_watt &&
                    phy.sinr(rec.signal_watt, rec.max_interference_watt) >=
                        rate.sinr_min_linear;
    const double now = now_at(n);
    switch (kind) {
      case FrameKind::kData:
        if (!ok) {
          ++stats_at(n).failed_receptions;
          return;  // no ACK; the transmitter times out
        }
        queue_at(n).schedule_at(
            now + params.sifs_s, EventKey{kTimerClass, n, node.seq++},
            [this, n, origin, packet = rec.packet] {
              ack_send(n, origin, packet);
            });
        return;
      case FrameKind::kRts:
        if (!ok) {
          ++stats_at(n).control_failures;
          return;  // no CTS; the initiator times out
        }
        queue_at(n).schedule_at(
            now + params.sifs_s, EventKey{kTimerClass, n, node.seq++},
            [this, n, origin, data_s = rec.planned_data_s] {
              cts_send(n, origin, data_s);
            });
        return;
      case FrameKind::kCts:
        if (node.response_timer != kNoEvent) {
          queue_at(n).cancel(node.response_timer);
          node.response_timer = kNoEvent;
        }
        if (!ok) {
          ++stats_at(n).control_failures;
          queue_at(n).schedule_at(now + params.slot_time_s,
                                  EventKey{kTimerClass, n, node.seq++},
                                  [this, n] { handle_ack_timeout(n); });
          return;
        }
        queue_at(n).schedule_at(now + params.sifs_s,
                                EventKey{kTimerClass, n, node.seq++},
                                [this, n] { transmit_data(n); });
        return;
    }
  }

  void on_ack_arrive(const Message& msg) {
    NodeState& node = nodes[msg.target];
    if (node.response_timer != kNoEvent) {
      queue_at(msg.target).cancel(node.response_timer);
      node.response_timer = kNoEvent;
    }
    complete_success(msg.target);
  }

  // ------------------------------------------------------------ traffic
  void enqueue_packet(std::uint32_t n, Packet packet) {
    NodeState& node = nodes[n];
    if (node.queue.size() >= params.queue_limit) {
      if (now_at(n) >= measure_start) ++tally_at(n, packet.flow).dropped;
      return;
    }
    node.queue.push_back(packet);
    maybe_start_contention(n);
  }

  void on_arrival(std::uint32_t f) {
    const FlowSpec& flow = flows[f];
    const auto source =
        static_cast<std::uint32_t>(network.link(flow.links.front()).tx);
    const double now = now_at(source);
    if (now >= measure_start) ++tally_at(source, f).generated;
    enqueue_packet(source, Packet{f, 0, now});
    queue_at(source).schedule_at(
        now + flow.arrival_interval_s,
        EventKey{kArrivalClass, source, nodes[source].seq++},
        [this, f] { on_arrival(f); });
  }

  // --------------------------------------------------------------- run
  SimReport run(double duration_s, double warmup_s) {
    MRWSN_REQUIRE(!ran, "a ParallelCsmaSimulator can only run once");
    MRWSN_REQUIRE(duration_s > 0.0 && warmup_s >= 0.0, "invalid durations");
    ran = true;
    measure_start = warmup_s;
    tallies.assign(part.num_regions(),
                   std::vector<FlowTally>(flows.size()));

    // Seed arrivals (serial): random phase from each flow's own stream.
    for (std::uint32_t f = 0; f < flows.size(); ++f) {
      const auto source =
          static_cast<std::uint32_t>(network.link(flows[f].links.front()).tx);
      Rng stream = node_stream(seed ^ 0xf10af10af10af10aULL, f);
      const double phase = stream.uniform(0.0, flows[f].arrival_interval_s);
      core.queue_of(part.region_of_node[source])
          .schedule_at(phase,
                       EventKey{kArrivalClass, source, nodes[source].seq++},
                       [this, f] { on_arrival(f); });
    }

    core.run_to(warmup_s);
    // Reset busy accounting at the measurement boundary (the same
    // convention as the sequential simulator).
    for (NodeState& node : nodes) {
      node.busy_accum = 0.0;
      if (node.busy_since >= 0.0) node.busy_since = warmup_s;
    }
    const double end = warmup_s + duration_s;
    core.run_to(end);

    SimReport report;
    report.measured_s = duration_s;
    for (const RegionStats& region : stats) {
      report.data_transmissions += region.data_transmissions;
      report.failed_receptions += region.failed_receptions;
      report.control_failures += region.control_failures;
    }
    report.node_idle.reserve(nodes.size());
    for (const NodeState& node : nodes) {
      double busy = node.busy_accum;
      if (node.busy_since >= 0.0) busy += end - node.busy_since;
      report.node_idle.push_back(
          std::clamp(1.0 - busy / duration_s, 0.0, 1.0));
    }
    report.flows =
        merge_flow_tallies(flows, tallies, duration_s, params.payload_bits);
    return report;
  }
};

ParallelCsmaSimulator::ParallelCsmaSimulator(const net::Network& network,
                                             MacParams params,
                                             ShardParams shard,
                                             std::uint64_t seed)
    : impl_(std::make_unique<Impl>(network, params, shard, seed)) {}

ParallelCsmaSimulator::~ParallelCsmaSimulator() = default;

void ParallelCsmaSimulator::add_flow(std::vector<net::LinkId> path_links,
                                     double demand_mbps) {
  check_flow_path(impl_->network, path_links, demand_mbps);
  FlowSpec flow;
  flow.links = std::move(path_links);
  flow.demand_mbps = demand_mbps;
  flow.arrival_interval_s =
      static_cast<double>(impl_->params.payload_bits) / (demand_mbps * 1e6);
  impl_->flows.push_back(std::move(flow));
}

SimReport ParallelCsmaSimulator::run(double duration_s, double warmup_s) {
  return impl_->run(duration_s, warmup_s);
}

// ===================================================================
// ParallelTdmaSimulator
// ===================================================================

struct ParallelTdmaSimulator::Impl {
  struct Packet {
    std::uint32_t flow = 0;
    std::uint32_t hop = 0;
    double created_at = 0.0;
  };

  struct Window {
    double offset_s = 0.0;
    double length_s = 0.0;
    double rate_mbps = 0.0;
  };

  struct LinkState {
    std::deque<Packet> queue;
    std::vector<Window> windows;
    bool transmitting = false;
    std::uint64_t seq = 0;
  };

  const net::Network& network;
  std::vector<core::ScheduledSet> schedule;
  TdmaParams params;
  ShardParams shard;
  GridPartition part;
  ShardCore<Impl> core;

  std::vector<FlowSpec> flows;
  std::vector<LinkState> links;  // owned by the region of link.tx
  std::vector<double> node_busy_fraction;
  std::vector<std::vector<FlowTally>> tallies;       // [region][flow]
  std::vector<std::uint64_t> data_transmissions;     // [region]
  std::uint64_t seed;
  double measure_start = 0.0;
  bool ran = false;

  Impl(const net::Network& net, const core::InterferenceModel& model,
       std::vector<core::ScheduledSet> sched, TdmaParams p, ShardParams s,
       std::uint64_t sd)
      : network(net),
        schedule(std::move(sched)),
        params(p),
        shard(s),
        part(resolve_partition(net, s)),
        core(*this, part.num_regions(), s.threads, s.latency_s),
        seed(sd) {
    MRWSN_REQUIRE(params.frame_s > 0.0, "frame length must be positive");
    const core::ScheduleCheck check = core::verify_schedule(model, schedule);
    MRWSN_REQUIRE(check.valid,
                  "refusing to execute an invalid schedule: " + check.issue);

    // Frame stretch + slot layout + static busy fractions: identical to
    // the sequential TdmaSimulator (same code, run serially at init).
    for (const core::ScheduledSet& entry : schedule) {
      for (std::size_t i = 0; i < entry.set.size(); ++i) {
        const double needed =
            1.05 * packet_airtime(entry.set.mbps[i]) / entry.time_share;
        params.frame_s = std::max(params.frame_s, needed);
      }
    }
    links.resize(network.num_links());
    double offset = 0.0;
    for (const core::ScheduledSet& entry : schedule) {
      const double length = entry.time_share * params.frame_s;
      for (std::size_t i = 0; i < entry.set.size(); ++i) {
        links[entry.set.links[i]].windows.push_back(
            Window{offset, length, entry.set.mbps[i]});
      }
      offset += length;
    }
    node_busy_fraction.assign(network.num_nodes(), 0.0);
    for (const core::ScheduledSet& entry : schedule) {
      for (net::NodeId n = 0; n < network.num_nodes(); ++n) {
        bool busy = false;
        double sensed = 0.0;
        for (net::LinkId id : entry.set.links) {
          const net::Link& link = network.link(id);
          if (link.tx == n || link.rx == n) {
            busy = true;
            break;
          }
          sensed += network.received_power(link.tx, n);
        }
        if (busy || sensed >= network.phy().cs_threshold_watt())
          node_busy_fraction[n] += entry.time_share;
      }
    }
  }

  std::uint32_t region_of_link(net::LinkId id) const {
    return part.region_of_node[network.link(id).tx];
  }

  std::uint32_t target_region(const Message& msg) const {
    return region_of_link(msg.target);
  }

  EventQueue& queue_of_link(net::LinkId id) {
    return core.queue_of(region_of_link(id));
  }

  double now_of_link(net::LinkId id) const {
    return core.now_of(region_of_link(id));
  }

  FlowTally& tally_of_link(net::LinkId id, std::uint32_t flow) {
    return tallies[region_of_link(id)][flow];
  }

  double packet_airtime(double rate_mbps) const {
    return params.phy_overhead_s +
           static_cast<double>(params.payload_bits) / (rate_mbps * 1e6);
  }

  const Window* usable_window(const LinkState& state, double now) const {
    const double frame_start =
        std::floor(now / params.frame_s) * params.frame_s;
    for (const Window& w : state.windows) {
      const double start = frame_start + w.offset_s;
      const double end = start + w.length_s;
      if (now >= start - 1e-12 &&
          now + packet_airtime(w.rate_mbps) <= end + 1e-12)
        return &w;
    }
    return nullptr;
  }

  double next_window_start(const LinkState& state, double now) const {
    const double frame_start =
        std::floor(now / params.frame_s) * params.frame_s;
    double best = std::numeric_limits<double>::infinity();
    for (const Window& w : state.windows) {
      double start = frame_start + w.offset_s;
      if (start <= now + 1e-12) start += params.frame_s;
      best = std::min(best, start);
    }
    return best;
  }

  void pump_link(net::LinkId id) {
    LinkState& state = links[id];
    if (state.transmitting || state.queue.empty() || state.windows.empty())
      return;
    const double now = now_of_link(id);
    if (const Window* window = usable_window(state, now)) {
      state.transmitting = true;
      ++data_transmissions[region_of_link(id)];
      queue_of_link(id).schedule_at(
          now + packet_airtime(window->rate_mbps),
          EventKey{kTimerClass, static_cast<std::uint32_t>(id), state.seq++},
          [this, id] { finish_packet(id); });
    } else {
      const double wake = std::max(next_window_start(state, now), now + 1e-9);
      queue_of_link(id).schedule_at(
          wake,
          EventKey{kTimerClass, static_cast<std::uint32_t>(id), state.seq++},
          [this, id] { pump_link(id); });
    }
  }

  void finish_packet(net::LinkId id) {
    LinkState& state = links[id];
    MRWSN_ASSERT(state.transmitting && !state.queue.empty(),
                 "TDMA finished a packet that never started");
    state.transmitting = false;
    const Packet packet = state.queue.front();
    state.queue.pop_front();
    const double now = now_of_link(id);

    const FlowSpec& flow = flows[packet.flow];
    if (packet.hop + 1 == flow.links.size()) {
      if (now >= measure_start) {
        FlowTally& tally = tally_of_link(id, packet.flow);
        ++tally.delivered;
        tally.latencies_s.push_back(now - packet.created_at);
      }
    } else {
      // Hand off to the next hop's link queue after the uniform latency —
      // the only cross-region interaction TDMA has.
      Message msg;
      msg.type = MsgType::kHandoff;
      msg.effect_s = now + shard.latency_s;
      msg.origin = static_cast<std::uint32_t>(id);
      msg.seq = state.seq++;
      msg.target =
          static_cast<std::uint32_t>(flow.links[packet.hop + 1]);
      msg.flow = packet.flow;
      msg.hop = packet.hop + 1;
      msg.a = packet.created_at;
      core.post(region_of_link(id), msg);
    }
    pump_link(id);
  }

  void handle(const Message& msg) {
    MRWSN_ASSERT(msg.type == MsgType::kHandoff,
                 "unexpected message in a TDMA simulation");
    deliver_to_link(msg.target, Packet{msg.flow, msg.hop, msg.a});
  }

  void deliver_to_link(net::LinkId id, Packet packet) {
    LinkState& state = links[id];
    if (state.queue.size() >= params.queue_limit) {
      if (now_of_link(id) >= measure_start)
        ++tally_of_link(id, packet.flow).dropped;
      return;
    }
    state.queue.push_back(packet);
    pump_link(id);
  }

  void on_arrival(std::uint32_t f) {
    const FlowSpec& flow = flows[f];
    const net::LinkId first = flow.links.front();
    const double now = now_of_link(first);
    if (now >= measure_start) ++tally_of_link(first, f).generated;
    deliver_to_link(first, Packet{f, 0, now});
    queue_of_link(first).schedule_at(
        now + flow.arrival_interval_s,
        EventKey{kArrivalClass, static_cast<std::uint32_t>(first),
                 links[first].seq++},
        [this, f] { on_arrival(f); });
  }

  SimReport run(double duration_s, double warmup_s) {
    MRWSN_REQUIRE(!ran, "a ParallelTdmaSimulator can only run once");
    MRWSN_REQUIRE(duration_s > 0.0 && warmup_s >= 0.0, "invalid durations");
    ran = true;
    measure_start = warmup_s;
    tallies.assign(part.num_regions(),
                   std::vector<FlowTally>(flows.size()));
    data_transmissions.assign(part.num_regions(), 0);

    for (std::uint32_t f = 0; f < flows.size(); ++f) {
      const net::LinkId first = flows[f].links.front();
      Rng stream = node_stream(seed ^ 0xf10af10af10af10aULL, f);
      const double phase = stream.uniform(0.0, flows[f].arrival_interval_s);
      queue_of_link(first).schedule_at(
          phase,
          EventKey{kArrivalClass, static_cast<std::uint32_t>(first),
                   links[first].seq++},
          [this, f] { on_arrival(f); });
    }

    const double end = warmup_s + duration_s;
    core.run_to(end);

    SimReport report;
    report.measured_s = duration_s;
    for (std::uint64_t tx : data_transmissions)
      report.data_transmissions += tx;
    report.failed_receptions = 0;  // certified slots never fail
    for (net::NodeId n = 0; n < network.num_nodes(); ++n)
      report.node_idle.push_back(
          std::clamp(1.0 - node_busy_fraction[n], 0.0, 1.0));
    report.flows =
        merge_flow_tallies(flows, tallies, duration_s, params.payload_bits);
    return report;
  }
};

ParallelTdmaSimulator::ParallelTdmaSimulator(
    const net::Network& network, const core::InterferenceModel& model,
    std::vector<core::ScheduledSet> schedule, TdmaParams params,
    ShardParams shard, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(network, model, std::move(schedule),
                                   params, shard, seed)) {}

ParallelTdmaSimulator::~ParallelTdmaSimulator() = default;

void ParallelTdmaSimulator::add_flow(std::vector<net::LinkId> path_links,
                                     double demand_mbps) {
  check_flow_path(impl_->network, path_links, demand_mbps);
  FlowSpec flow;
  flow.links = std::move(path_links);
  flow.demand_mbps = demand_mbps;
  flow.arrival_interval_s =
      static_cast<double>(impl_->params.payload_bits) / (demand_mbps * 1e6);
  impl_->flows.push_back(std::move(flow));
}

SimReport ParallelTdmaSimulator::run(double duration_s, double warmup_s) {
  return impl_->run(duration_s, warmup_s);
}

}  // namespace mrwsn::mac
