#include "routing/admission.hpp"

#include "core/estimation.hpp"
#include "core/idle_time.hpp"
#include "util/error.hpp"

namespace mrwsn::routing {

namespace {
constexpr double kDemandSlack = 1e-6;  // absorb LP round-off at the boundary
}

std::string admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kLpOracle:
      return "LP oracle (Eq. 6)";
    case AdmissionPolicy::kBottleneckNode:
      return "bottleneck node (Eq. 10)";
    case AdmissionPolicy::kCliqueConstraint:
      return "clique constraint (Eq. 11)";
    case AdmissionPolicy::kMinCliqueBottleneck:
      return "min of both (Eq. 12)";
    case AdmissionPolicy::kConservativeClique:
      return "conservative clique (Eq. 13)";
    case AdmissionPolicy::kExpectedCliqueTime:
      return "expected clique time (Eq. 15)";
  }
  throw PreconditionError("unknown admission policy");
}

AdmissionController::AdmissionController(const net::Network& network,
                                         const core::InterferenceModel& model,
                                         Metric metric)
    : AdmissionController(
          network, model,
          RouteStrategy([router = QosRouter(network, model), metric](
                            const FlowRequest& request,
                            std::span<const core::LinkFlow> background) {
            return router.find_path(request.src, request.dst, metric, background);
          })) {}

AdmissionController::AdmissionController(const net::Network& network,
                                         const core::InterferenceModel& model,
                                         const WidestPathRouter& widest)
    : AdmissionController(
          network, model,
          RouteStrategy([widest](const FlowRequest& request,
                                 std::span<const core::LinkFlow> background) {
            return widest.find_path(request.src, request.dst, background).path;
          })) {}

AdmissionController::AdmissionController(const net::Network& network,
                                         const core::InterferenceModel& model,
                                         RouteStrategy strategy)
    : network_(&network),
      model_(&model),
      strategy_(std::move(strategy)),
      engine_(model) {
  MRWSN_REQUIRE(strategy_ != nullptr, "route strategy must be callable");
}

void AdmissionController::commit(core::LinkFlow flow) {
  engine_.add_background(flow);
  admitted_.push_back(std::move(flow));
}

void AdmissionController::preload_background(std::vector<core::LinkFlow> flows) {
  for (core::LinkFlow& flow : flows) commit(std::move(flow));
}

void AdmissionController::clear() {
  admitted_.clear();
  engine_.clear();
}

double AdmissionController::estimate_for_policy(const net::Path& path) const {
  const core::IdleResult idle =
      core::schedule_idle_ratios(*network_, *model_, admitted_);
  const core::PathEstimateInput input = core::make_path_estimate_input(
      *network_, *model_, path.links(), idle.node_idle);
  switch (policy_) {
    case AdmissionPolicy::kBottleneckNode:
      return core::estimate_bottleneck_node(input);
    case AdmissionPolicy::kCliqueConstraint:
      return core::estimate_clique_constraint(input);
    case AdmissionPolicy::kMinCliqueBottleneck:
      return core::estimate_min_clique_bottleneck(input);
    case AdmissionPolicy::kConservativeClique:
      return core::estimate_conservative_clique(input);
    case AdmissionPolicy::kExpectedCliqueTime:
      return core::estimate_expected_clique_time(input);
    case AdmissionPolicy::kLpOracle:
      break;
  }
  throw InvariantError("estimate_for_policy called for the LP oracle");
}

AdmissionOutcome AdmissionController::run(std::span<const FlowRequest> requests,
                                          bool stop_at_first_failure) {
  AdmissionOutcome outcome;
  for (const FlowRequest& request : requests) {
    MRWSN_REQUIRE(request.demand_mbps > 0.0, "flow demand must be positive");
    AdmissionRecord record;
    record.request = request;
    record.path = strategy_(request, admitted_);
    if (record.path) {
      // LP truth comes from the batched engine: same Eq. 6 optimum as a
      // cold max_path_bandwidth() solve, but the conflict matrices, the
      // column pool, and the background basis persist across requests.
      const core::AdmissionAnswer truth =
          engine_.query(record.path->links(), request.demand_mbps);
      record.true_available_mbps =
          truth.background_feasible ? truth.available_mbps : 0.0;
      record.available_mbps = policy_ == AdmissionPolicy::kLpOracle
                                  ? record.true_available_mbps
                                  : estimate_for_policy(*record.path);
      record.admitted = record.available_mbps + kDemandSlack >= request.demand_mbps;
      record.over_admitted =
          record.admitted &&
          record.true_available_mbps + kDemandSlack < request.demand_mbps;
    }
    if (record.admitted)
      commit(to_link_flow(*record.path, request.demand_mbps));

    const bool failed = !record.admitted;
    if (record.over_admitted) ++outcome.over_admissions;
    outcome.records.push_back(std::move(record));
    if (failed) {
      if (!outcome.first_failure)
        outcome.first_failure = outcome.records.size() - 1;
      if (stop_at_first_failure) break;
    } else {
      ++outcome.admitted_count;
    }
  }
  return outcome;
}

}  // namespace mrwsn::routing
