#include "routing/qos_router.hpp"

#include <algorithm>

#include "core/idle_time.hpp"
#include "graph/shortest_path.hpp"
#include "util/error.hpp"

namespace mrwsn::routing {

QosRouter::QosRouter(const net::Network& network,
                     const core::InterferenceModel& model)
    : network_(&network), model_(&model) {}

std::optional<net::Path> QosRouter::find_path(
    net::NodeId src, net::NodeId dst, Metric metric,
    std::span<const double> node_idle) const {
  MRWSN_REQUIRE(src < network_->num_nodes() && dst < network_->num_nodes(),
                "node id out of range");
  MRWSN_REQUIRE(src != dst, "source and destination must differ");
  MRWSN_REQUIRE(node_idle.size() == network_->num_nodes(),
                "node idle vector must cover every node");

  graph::Digraph digraph(network_->num_nodes());
  // Digraph edge ids are assigned densely in insertion order; remember
  // which network link each edge came from.
  std::vector<net::LinkId> edge_to_link;
  for (const net::Link& link : network_->links()) {
    const double idle = std::min(node_idle[link.tx], node_idle[link.rx]);
    const auto weight = link_weight(metric, link, idle);
    if (!weight) continue;
    digraph.add_edge(link.tx, link.rx, *weight);
    edge_to_link.push_back(link.id);
  }

  const graph::PathResult result = graph::dijkstra(digraph, src, dst);
  if (!result.reachable) return std::nullopt;

  std::vector<net::LinkId> links;
  links.reserve(result.edges.size());
  for (std::size_t edge_id : result.edges) links.push_back(edge_to_link[edge_id]);
  return net::Path(*network_, std::move(links));
}

std::optional<net::Path> QosRouter::find_path(
    net::NodeId src, net::NodeId dst, Metric metric,
    std::span<const core::LinkFlow> background) const {
  const core::IdleResult idle =
      core::schedule_idle_ratios(*network_, *model_, background);
  return find_path(src, dst, metric, idle.node_idle);
}

core::LinkFlow to_link_flow(const net::Path& path, double demand_mbps) {
  MRWSN_REQUIRE(demand_mbps >= 0.0, "demand cannot be negative");
  return core::LinkFlow{path.links(), demand_mbps};
}

}  // namespace mrwsn::routing
