#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/admission_engine.hpp"
#include "routing/qos_router.hpp"
#include "routing/widest_path.hpp"

namespace mrwsn::routing {

/// A request for a new flow, before routing.
struct FlowRequest {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double demand_mbps = 0.0;
};

/// How the controller decides whether a routed path can carry the demand.
/// kLpOracle is the paper's Fig. 3 protocol (centralized ground truth);
/// the estimator policies model *distributed* admission control, where a
/// node only sees local rates and channel idle ratios (Section 4).
enum class AdmissionPolicy {
  kLpOracle,             ///< Eq. 6 LP value (ground truth)
  kBottleneckNode,       ///< Eq. 10
  kCliqueConstraint,     ///< Eq. 11
  kMinCliqueBottleneck,  ///< Eq. 12
  kConservativeClique,   ///< Eq. 13 (the paper's best estimator)
  kExpectedCliqueTime,   ///< Eq. 15
};

std::string admission_policy_name(AdmissionPolicy policy);

/// What happened to one request in the sequential admission experiment.
struct AdmissionRecord {
  FlowRequest request;
  std::optional<net::Path> path;  ///< nullopt when routing failed
  /// The value the active policy used to decide (equals the LP truth under
  /// kLpOracle, an estimate otherwise).
  double available_mbps = 0.0;
  /// The Eq. 6 LP truth on `path` at admission time, always recorded so
  /// estimator policies can be audited.
  double true_available_mbps = 0.0;
  bool admitted = false;  ///< available_mbps >= demand
  /// Admitted although the LP truth could not cover the demand: the
  /// admission error that degrades already-admitted flows.
  bool over_admitted = false;
};

/// Result of processing a request sequence.
struct AdmissionOutcome {
  std::vector<AdmissionRecord> records;
  std::size_t admitted_count = 0;
  /// Index into `records` of the first rejected request, if any.
  std::optional<std::size_t> first_failure;
  /// Of the admitted flows, how many were over-admissions (estimate said
  /// yes, LP truth said no). Always 0 under AdmissionPolicy::kLpOracle.
  std::size_t over_admissions = 0;
};

/// The paper's Section 5.2 experiment driver: flows join the network one
/// by one; each is routed under the chosen metric (with idle ratios from
/// the optimal schedule of already-admitted flows), then admitted iff the
/// Eq. 6 available bandwidth of its path covers its demand. The paper
/// stops at the first unsatisfied flow (`stop_at_first_failure = true`).
class AdmissionController {
 public:
  /// How a new request's path is chosen given the admitted background.
  using RouteStrategy = std::function<std::optional<net::Path>(
      const FlowRequest&, std::span<const core::LinkFlow>)>;

  /// Route with one of the Section-4 distributed metrics (idle ratios come
  /// from the optimal schedule of the admitted flows).
  AdmissionController(const net::Network& network,
                      const core::InterferenceModel& model, Metric metric);

  /// Route with the joint widest-path heuristic (k LP-evaluated candidates).
  AdmissionController(const net::Network& network,
                      const core::InterferenceModel& model,
                      const WidestPathRouter& widest);

  /// Route with an arbitrary strategy.
  AdmissionController(const net::Network& network,
                      const core::InterferenceModel& model,
                      RouteStrategy strategy);

  /// Decide admissions with `policy` (default: the LP oracle).
  void set_policy(AdmissionPolicy policy) { policy_ = policy; }
  AdmissionPolicy policy() const { return policy_; }

  AdmissionOutcome run(std::span<const FlowRequest> requests,
                       bool stop_at_first_failure = true);

  /// Flows admitted so far (usable as background for further queries).
  const std::vector<core::LinkFlow>& admitted_flows() const { return admitted_; }

  /// Treat `flows` as traffic that is already in the network before any
  /// request is processed (counts as background, not as admissions).
  void preload_background(std::vector<core::LinkFlow> flows);

  /// Reset the admitted-flow state (the engine keeps its column pool).
  void clear();

  /// Telemetry of the batched LP-truth engine (dual re-solves, pool size).
  core::AdmissionEngineStats engine_stats() const { return engine_.stats(); }

 private:
  double estimate_for_policy(const net::Path& path) const;
  void commit(core::LinkFlow flow);

  const net::Network* network_;
  const core::InterferenceModel* model_;
  RouteStrategy strategy_;
  AdmissionPolicy policy_ = AdmissionPolicy::kLpOracle;
  std::vector<core::LinkFlow> admitted_;
  /// Long-lived Eq. 6 truth oracle: shares the model's caches and its own
  /// column pool across the whole request sequence, and re-solves the
  /// background master with the dual simplex after every commit instead of
  /// starting each request from scratch. Kept in lockstep with admitted_.
  core::AdmissionEngine engine_;
};

}  // namespace mrwsn::routing
