#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/available_bandwidth.hpp"
#include "core/interference.hpp"
#include "net/path.hpp"
#include "routing/metrics.hpp"

namespace mrwsn::routing {

/// Distributed-style QoS routing (Section 4): each metric is an additive
/// per-link weight derived from locally observable quantities (rates and
/// channel idle ratios); the route is the weight-minimal path.
class QosRouter {
 public:
  QosRouter(const net::Network& network, const core::InterferenceModel& model);

  /// Find the best path from `src` to `dst` under `metric`, with per-node
  /// idle ratios already known (e.g. from core::schedule_idle_ratios or a
  /// mac:: measurement). Returns nullopt when no usable path exists.
  std::optional<net::Path> find_path(net::NodeId src, net::NodeId dst,
                                     Metric metric,
                                     std::span<const double> node_idle) const;

  /// Convenience: derive idle ratios from an optimal schedule of the
  /// background flows, then route.
  std::optional<net::Path> find_path(net::NodeId src, net::NodeId dst,
                                     Metric metric,
                                     std::span<const core::LinkFlow> background) const;

 private:
  const net::Network* network_;
  const core::InterferenceModel* model_;
};

/// Adapt a routed path + demand to the core model's flow type.
core::LinkFlow to_link_flow(const net::Path& path, double demand_mbps);

}  // namespace mrwsn::routing
