#pragma once

#include <optional>
#include <string>

#include "net/network.hpp"

namespace mrwsn::routing {

/// The three QoS routing metrics compared in the paper's Section 5.2.
enum class Metric {
  kHopCount,        ///< classic shortest path
  kE2eTxDelay,      ///< e2eTD of [1]: Σ 1/r_i, ignores background traffic
  kAverageE2eDelay, ///< average-e2eD (Eq. 14): Σ 1/(λ_i r_i)
};

std::string metric_name(Metric metric);

/// Additive link weight of `link` under `metric`, where `idle_ratio` is
/// the link's λ_i (min of its endpoints' channel idle ratios). Returns
/// nullopt when the link cannot be used (λ_i ~ 0 under average-e2eD: the
/// expected per-unit delay is unbounded).
std::optional<double> link_weight(Metric metric, const net::Link& link,
                                  double idle_ratio);

}  // namespace mrwsn::routing
