#include "routing/estimate_router.hpp"

#include <algorithm>
#include <queue>

#include "core/idle_time.hpp"
#include "util/error.hpp"

namespace mrwsn::routing {

std::string estimator_metric_name(EstimatorMetric metric) {
  switch (metric) {
    case EstimatorMetric::kCliqueConstraint:
      return "clique constraint (Eq. 11)";
    case EstimatorMetric::kMinCliqueBottleneck:
      return "min clique/bottleneck (Eq. 12)";
    case EstimatorMetric::kConservativeClique:
      return "conservative clique (Eq. 13)";
  }
  throw PreconditionError("unknown estimator metric");
}

EstimateRouter::EstimateRouter(const net::Network& network,
                               const core::InterferenceModel& model,
                               EstimatorMetric metric)
    : network_(&network), model_(&model), metric_(metric) {}

double EstimateRouter::estimate(std::span<const net::LinkId> path_links,
                                std::span<const double> node_idle) const {
  const core::PathEstimateInput input = core::make_path_estimate_input(
      *network_, *model_, path_links, node_idle);
  switch (metric_) {
    case EstimatorMetric::kCliqueConstraint:
      return core::estimate_clique_constraint(input);
    case EstimatorMetric::kMinCliqueBottleneck:
      return core::estimate_min_clique_bottleneck(input);
    case EstimatorMetric::kConservativeClique:
      return core::estimate_conservative_clique(input);
  }
  throw PreconditionError("unknown estimator metric");
}

std::optional<net::Path> EstimateRouter::find_path(
    net::NodeId src, net::NodeId dst, std::span<const double> node_idle) const {
  MRWSN_REQUIRE(src < network_->num_nodes() && dst < network_->num_nodes(),
                "node id out of range");
  MRWSN_REQUIRE(src != dst, "source and destination must differ");
  MRWSN_REQUIRE(node_idle.size() == network_->num_nodes(),
                "node idle vector must cover every node");

  // Widest-path label setting: labels carry the whole prefix because the
  // estimate is evaluated on prefixes, not edges. Ties favour fewer hops.
  struct Label {
    double width;
    std::vector<net::LinkId> links;
    net::NodeId at;
  };
  auto worse = [](const Label& a, const Label& b) {
    if (a.width != b.width) return a.width < b.width;
    return a.links.size() > b.links.size();
  };
  std::priority_queue<Label, std::vector<Label>, decltype(worse)> heap(worse);
  std::vector<double> best(network_->num_nodes(), -1.0);

  for (net::LinkId id : network_->links_from(src)) {
    const std::vector<net::LinkId> prefix{id};
    heap.push(Label{estimate(prefix, node_idle), prefix, network_->link(id).rx});
  }

  while (!heap.empty()) {
    Label label = heap.top();
    heap.pop();
    if (label.width <= 0.0) break;  // nothing usable remains
    if (label.width <= best[label.at]) continue;  // dominated
    best[label.at] = label.width;
    if (label.at == dst) return net::Path(*network_, std::move(label.links));

    for (net::LinkId id : network_->links_from(label.at)) {
      const net::Link& link = network_->link(id);
      // Loop-freedom: the receiver must be new to the prefix.
      bool revisits = link.rx == src;
      for (net::LinkId used : label.links) {
        if (network_->link(used).tx == link.rx ||
            network_->link(used).rx == link.rx) {
          revisits = true;
          break;
        }
      }
      if (revisits) continue;
      std::vector<net::LinkId> extended = label.links;
      extended.push_back(id);
      const double width = estimate(extended, node_idle);
      if (width <= best[link.rx]) continue;
      heap.push(Label{width, std::move(extended), link.rx});
    }
  }
  return std::nullopt;
}

std::optional<net::Path> EstimateRouter::find_path(
    net::NodeId src, net::NodeId dst,
    std::span<const core::LinkFlow> background) const {
  const core::IdleResult idle =
      core::schedule_idle_ratios(*network_, *model_, background);
  return find_path(src, dst, idle.node_idle);
}

}  // namespace mrwsn::routing
