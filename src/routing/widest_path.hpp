#pragma once

#include <optional>
#include <span>

#include "core/available_bandwidth.hpp"
#include "net/path.hpp"

namespace mrwsn::routing {

/// Result of a widest-path query.
struct WidestPathResult {
  std::optional<net::Path> path;  ///< nullopt when the pair is disconnected
  double available_mbps = 0.0;    ///< Eq. 6 value of `path`
  std::size_t candidates_evaluated = 0;
};

/// A heuristic for Section 4's joint QoS-routing / link-scheduling problem
/// (which the paper notes is NP-hard): enumerate up to `k` loop-free
/// candidate paths in increasing e2eTD order (Yen's algorithm) and return
/// the candidate with the largest Eq. 6 available bandwidth given the
/// background traffic.
///
/// Unlike the additive metrics of Section 4 this is a centralized
/// heuristic — it needs the global background state the LP needs anyway —
/// but it probes several path shapes instead of one, so it lower-bounds
/// the joint optimum at least as well as e2eTD routing does.
class WidestPathRouter {
 public:
  WidestPathRouter(const net::Network& network,
                   const core::InterferenceModel& model, std::size_t k = 5);

  WidestPathResult find_path(net::NodeId src, net::NodeId dst,
                             std::span<const core::LinkFlow> background) const;

 private:
  const net::Network* network_;
  const core::InterferenceModel* model_;
  std::size_t k_;
};

}  // namespace mrwsn::routing
