#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/available_bandwidth.hpp"
#include "core/estimation.hpp"
#include "net/path.hpp"

namespace mrwsn::routing {

/// Which Section-4 estimator the EstimateRouter maximizes.
enum class EstimatorMetric {
  kCliqueConstraint,     ///< Eq. 11
  kMinCliqueBottleneck,  ///< Eq. 12
  kConservativeClique,   ///< Eq. 13
};

std::string estimator_metric_name(EstimatorMetric metric);

/// The paper's Section-4 proposal taken literally: "use the minimum value
/// of estimated available bandwidth ... for all (local) maximal cliques as
/// routing metrics". Each intermediate node scores the bandwidth estimate
/// of the path prefix from the source to itself (local cliques + idle
/// ratios, all locally observable) and the route maximizes the estimate —
/// a widest-path label-setting search.
///
/// Because the estimate is evaluated on whole prefixes (it is not an
/// additive edge weight), label domination by best-estimate-per-node is a
/// heuristic, exactly as in the paper's distributed setting.
class EstimateRouter {
 public:
  EstimateRouter(const net::Network& network, const core::InterferenceModel& model,
                 EstimatorMetric metric = EstimatorMetric::kConservativeClique);

  /// Best-estimate path given per-node idle ratios; nullopt when `dst` is
  /// unreachable or every route estimates to zero bandwidth.
  std::optional<net::Path> find_path(net::NodeId src, net::NodeId dst,
                                     std::span<const double> node_idle) const;

  /// Convenience: idle ratios from the optimal schedule of `background`.
  std::optional<net::Path> find_path(net::NodeId src, net::NodeId dst,
                                     std::span<const core::LinkFlow> background) const;

  /// The estimate value of an explicit path under this router's metric.
  double estimate(std::span<const net::LinkId> path_links,
                  std::span<const double> node_idle) const;

 private:
  const net::Network* network_;
  const core::InterferenceModel* model_;
  EstimatorMetric metric_;
};

}  // namespace mrwsn::routing
