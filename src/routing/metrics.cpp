#include "routing/metrics.hpp"

#include "util/error.hpp"

namespace mrwsn::routing {

namespace {
constexpr double kIdleFloor = 1e-9;
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kHopCount:
      return "hop count";
    case Metric::kE2eTxDelay:
      return "e2eTD";
    case Metric::kAverageE2eDelay:
      return "average-e2eD";
  }
  throw PreconditionError("unknown routing metric");
}

std::optional<double> link_weight(Metric metric, const net::Link& link,
                                  double idle_ratio) {
  MRWSN_REQUIRE(idle_ratio >= 0.0 && idle_ratio <= 1.0,
                "idle ratio must lie in [0, 1]");
  switch (metric) {
    case Metric::kHopCount:
      return 1.0;
    case Metric::kE2eTxDelay:
      return 1.0 / link.best_mbps_alone;
    case Metric::kAverageE2eDelay:
      if (idle_ratio <= kIdleFloor) return std::nullopt;
      return 1.0 / (idle_ratio * link.best_mbps_alone);
  }
  throw PreconditionError("unknown routing metric");
}

}  // namespace mrwsn::routing
