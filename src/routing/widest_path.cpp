#include "routing/widest_path.hpp"

#include "graph/shortest_path.hpp"
#include "util/error.hpp"

namespace mrwsn::routing {

WidestPathRouter::WidestPathRouter(const net::Network& network,
                                   const core::InterferenceModel& model,
                                   std::size_t k)
    : network_(&network), model_(&model), k_(k) {
  MRWSN_REQUIRE(k > 0, "need at least one candidate path");
}

WidestPathResult WidestPathRouter::find_path(
    net::NodeId src, net::NodeId dst,
    std::span<const core::LinkFlow> background) const {
  MRWSN_REQUIRE(src < network_->num_nodes() && dst < network_->num_nodes(),
                "node id out of range");
  MRWSN_REQUIRE(src != dst, "source and destination must differ");

  // Candidate generation: k shortest loop-free paths by transmission
  // delay (Σ 1/r), the fixed-weight metric that best tracks capacity.
  graph::Digraph digraph(network_->num_nodes());
  std::vector<net::LinkId> edge_to_link;
  for (const net::Link& link : network_->links()) {
    digraph.add_edge(link.tx, link.rx, 1.0 / link.best_mbps_alone);
    edge_to_link.push_back(link.id);
  }

  WidestPathResult best;
  for (const graph::PathResult& candidate :
       graph::k_shortest_paths(digraph, src, dst, k_)) {
    std::vector<net::LinkId> links;
    links.reserve(candidate.edges.size());
    for (std::size_t edge_id : candidate.edges)
      links.push_back(edge_to_link[edge_id]);

    const core::AvailableBandwidthResult lp =
        core::max_path_bandwidth(*model_, background, links);
    ++best.candidates_evaluated;
    if (!lp.background_feasible) continue;
    if (!best.path || lp.available_mbps > best.available_mbps) {
      best.path = net::Path(*network_, std::move(links));
      best.available_mbps = lp.available_mbps;
    }
  }
  return best;
}

}  // namespace mrwsn::routing
