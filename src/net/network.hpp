#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "phy/phy_model.hpp"
#include "phy/shadowing.hpp"

namespace mrwsn::net {

using NodeId = std::size_t;
using LinkId = std::size_t;

/// A radio node at a position. `alive` is false once the node has left the
/// network (churn); dead nodes keep their id so link and node ids stay
/// stable across the whole mutation history.
struct Node {
  NodeId id = 0;
  geom::Point position;
  bool alive = true;
};

/// A directed wireless link. A link exists iff its receiver can decode at
/// least the lowest rate when the transmitter sends alone (Eq. 1 with zero
/// interference). Under topology churn a link that falls out of range (or
/// loses an endpoint) keeps its id with `alive == false`, and is revived in
/// place when the pair becomes decodable again — ids are append-only.
struct Link {
  LinkId id = 0;
  NodeId tx = 0;
  NodeId rx = 0;
  double length_m = 0.0;
  bool alive = true;
  phy::RateIndex best_rate_alone = 0;  ///< index of the fastest lone rate
  double best_mbps_alone = 0.0;        ///< its Mbps value; 0 when dead
  /// Fastest rate index this link may use (rate indices are fastest-first,
  /// so `rate_cap = 0` means unrestricted). Set by rate-adaptation churn
  /// (core::TopologyDelta::set_rate); interference semantics clamp the
  /// link's usable and concurrent rates to indices >= rate_cap.
  phy::RateIndex rate_cap = 0;
};

/// A network: node placement + physical layer + every directed link the
/// PHY admits. This is the substrate every higher layer works on.
///
/// The network is immutable under normal operation; the dynamic-topology
/// surface below (set_position/add_node/... + refresh_link) is driven
/// exclusively by core::TopologyDelta, which keeps the derived state of
/// every interference model built on top consistent with each mutation.
class Network {
 public:
  Network(std::vector<geom::Point> positions, phy::PhyModel phy);

  /// With log-normal shadowing: every received power (signal, interference
  /// and carrier sensing alike) is scaled by the pair's shadowing gain, and
  /// link existence/rates are derived from the shadowed power.
  Network(std::vector<geom::Point> positions, phy::PhyModel phy,
          phy::Shadowing shadowing);

  const phy::PhyModel& phy() const { return phy_; }
  bool has_shadowing() const { return shadowing_.has_value(); }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// The link from `tx` to `rx`, if one has ever been admitted (it may be
  /// dead — check link(id).alive).
  std::optional<LinkId> find_link(NodeId tx, NodeId rx) const;

  /// Links whose transmitter is `node` (alive and dead alike).
  const std::vector<LinkId>& links_from(NodeId node) const;

  /// Links whose receiver is `node` (alive and dead alike).
  const std::vector<LinkId>& links_to(NodeId node) const;

  /// Euclidean distance between two nodes in metres.
  double distance(NodeId a, NodeId b) const;

  /// Received power at node `at` from a transmission by node `from`, at
  /// `from`'s per-node transmit power.
  double received_power(NodeId from, NodeId at) const;

  // --- Dynamic-topology surface (see class comment) -----------------------

  /// Move a node. Does NOT touch links: the caller must refresh_link every
  /// pair whose decodability or length the move can change (TopologyDelta
  /// localizes that set with a geom::SpatialGrid).
  void set_position(NodeId id, geom::Point position);

  /// Per-node transmit power in watts (defaults to the PHY's radio power).
  /// Affects every transmission from the node — link rates, interference,
  /// and carrier sensing alike. Caller refreshes outgoing links.
  void set_node_tx_power(NodeId id, double tx_power_watt);
  double node_tx_power(NodeId id) const;

  /// Append a node (id = previous num_nodes()). No links until the caller
  /// refreshes the pairs the new node can reach.
  NodeId add_node(geom::Point position);

  /// Mark a node dead/alive. Caller refreshes incident links (refresh_link
  /// kills links with a dead endpoint).
  void set_node_alive(NodeId id, bool alive);

  /// Cap a link's fastest usable rate (0 = unrestricted).
  void set_rate_cap(LinkId id, phy::RateIndex cap);

  /// Outcome of refresh_link: which link was touched and whether anything
  /// observable changed.
  struct LinkRefresh {
    LinkId id = 0;
    bool created = false;  ///< a brand-new id was appended
    bool changed = false;  ///< alive/rate/length differ from before
  };

  /// Re-derive the (tx, rx) link from current positions, powers, and
  /// liveness: updates length and lone rate, kills a link whose receiver
  /// can no longer decode (or whose endpoint died), revives one that can
  /// again, and creates the link if the pair is decodable but never had an
  /// id. Returns nullopt when the pair has no link before or after.
  std::optional<LinkRefresh> refresh_link(NodeId tx, NodeId rx);

 private:
  void check_node(NodeId id) const;

  std::vector<Node> nodes_;
  phy::PhyModel phy_;
  std::optional<phy::Shadowing> shadowing_;
  std::vector<double> node_power_;  // per-node tx power, watts
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> links_from_;        // by tx node
  std::vector<std::vector<LinkId>> links_to_;          // by rx node
  std::vector<std::vector<std::optional<LinkId>>> by_pair_;  // [tx][rx]
};

}  // namespace mrwsn::net
