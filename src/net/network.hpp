#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "phy/phy_model.hpp"
#include "phy/shadowing.hpp"

namespace mrwsn::net {

using NodeId = std::size_t;
using LinkId = std::size_t;

/// A radio node at a fixed position.
struct Node {
  NodeId id = 0;
  geom::Point position;
};

/// A directed wireless link. A link exists iff its receiver can decode at
/// least the lowest rate when the transmitter sends alone (Eq. 1 with zero
/// interference).
struct Link {
  LinkId id = 0;
  NodeId tx = 0;
  NodeId rx = 0;
  double length_m = 0.0;
  phy::RateIndex best_rate_alone = 0;  ///< index of the fastest lone rate
  double best_mbps_alone = 0.0;        ///< its Mbps value
};

/// An immutable network: node placement + physical layer + every directed
/// link the PHY admits. This is the substrate every higher layer works on.
class Network {
 public:
  Network(std::vector<geom::Point> positions, phy::PhyModel phy);

  /// With log-normal shadowing: every received power (signal, interference
  /// and carrier sensing alike) is scaled by the pair's shadowing gain, and
  /// link existence/rates are derived from the shadowed power.
  Network(std::vector<geom::Point> positions, phy::PhyModel phy,
          phy::Shadowing shadowing);

  const phy::PhyModel& phy() const { return phy_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// The link from `tx` to `rx`, if the PHY admits one.
  std::optional<LinkId> find_link(NodeId tx, NodeId rx) const;

  /// Links whose transmitter is `node`.
  const std::vector<LinkId>& links_from(NodeId node) const;

  /// Euclidean distance between two nodes in metres.
  double distance(NodeId a, NodeId b) const;

  /// Received power at node `at` from a transmission by node `from`.
  double received_power(NodeId from, NodeId at) const;

 private:
  std::vector<Node> nodes_;
  phy::PhyModel phy_;
  std::optional<phy::Shadowing> shadowing_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> links_from_;        // by tx node
  std::vector<std::vector<std::optional<LinkId>>> by_pair_;  // [tx][rx]
};

}  // namespace mrwsn::net
