#include "net/path.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mrwsn::net {

Path::Path(const Network& network, std::vector<LinkId> links)
    : links_(std::move(links)) {
  MRWSN_REQUIRE(!links_.empty(), "a path needs at least one link");
  nodes_.reserve(links_.size() + 1);
  nodes_.push_back(network.link(links_.front()).tx);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const Link& link = network.link(links_[i]);
    MRWSN_REQUIRE(link.tx == nodes_.back(),
                  "path links must be contiguous (link tx != previous rx)");
    nodes_.push_back(link.rx);
  }
  // Loop-freedom: no node may appear twice.
  std::vector<NodeId> sorted = nodes_;
  std::sort(sorted.begin(), sorted.end());
  MRWSN_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                "path revisits a node");
  source_ = nodes_.front();
  destination_ = nodes_.back();
}

Path Path::from_nodes(const Network& network, const std::vector<NodeId>& nodes) {
  MRWSN_REQUIRE(nodes.size() >= 2, "a path needs at least two nodes");
  std::vector<LinkId> links;
  links.reserve(nodes.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const auto link = network.find_link(nodes[i], nodes[i + 1]);
    MRWSN_REQUIRE(link.has_value(), "consecutive path nodes are not connected");
    links.push_back(*link);
  }
  return Path(network, std::move(links));
}

bool Path::contains_link(LinkId link) const {
  return std::find(links_.begin(), links_.end(), link) != links_.end();
}

bool Path::contains_node(NodeId node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

}  // namespace mrwsn::net
