#pragma once

#include <vector>

#include "net/network.hpp"

namespace mrwsn::net {

/// A loop-free multihop path: a contiguous sequence of links where each
/// link's receiver is the next link's transmitter and no node repeats.
class Path {
 public:
  /// Build from an ordered list of link ids; validates contiguity and
  /// loop-freedom against `network`.
  Path(const Network& network, std::vector<LinkId> links);

  /// Build from an ordered list of node ids; every consecutive pair must
  /// be joined by a link in `network`.
  static Path from_nodes(const Network& network, const std::vector<NodeId>& nodes);

  NodeId source() const { return source_; }
  NodeId destination() const { return destination_; }
  std::size_t hop_count() const { return links_.size(); }
  const std::vector<LinkId>& links() const { return links_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  bool contains_link(LinkId link) const;
  bool contains_node(NodeId node) const;

  friend bool operator==(const Path& a, const Path& b) { return a.links_ == b.links_; }

 private:
  std::vector<LinkId> links_;
  std::vector<NodeId> nodes_;  // hop_count()+1 entries
  NodeId source_ = 0;
  NodeId destination_ = 0;
};

/// A unidirectional traffic flow: a path plus an end-to-end demand in Mbps.
/// Background traffic in the paper's model is a set of flows whose demands
/// must keep being delivered while a new flow is admitted.
struct Flow {
  Path path;
  double demand_mbps = 0.0;
};

}  // namespace mrwsn::net
