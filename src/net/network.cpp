#include "net/network.hpp"

#include "util/error.hpp"

namespace mrwsn::net {

Network::Network(std::vector<geom::Point> positions, phy::PhyModel phy)
    : Network(std::move(positions), std::move(phy), phy::Shadowing(0.0, 0)) {}

Network::Network(std::vector<geom::Point> positions, phy::PhyModel phy,
                 phy::Shadowing shadowing)
    : phy_(std::move(phy)) {
  if (shadowing.sigma_db() > 0.0) shadowing_ = shadowing;
  MRWSN_REQUIRE(!positions.empty(), "a network needs at least one node");
  nodes_.reserve(positions.size());
  for (NodeId id = 0; id < positions.size(); ++id)
    nodes_.push_back(Node{id, positions[id]});

  const std::size_t n = nodes_.size();
  links_from_.assign(n, {});
  by_pair_.assign(n, std::vector<std::optional<LinkId>>(n));

  for (NodeId tx = 0; tx < n; ++tx) {
    for (NodeId rx = 0; rx < n; ++rx) {
      if (tx == rx) continue;
      // Link existence and its lone rate follow the (possibly shadowed)
      // received power: Eq. 1 with zero interference.
      const double pr = received_power(tx, rx);
      const auto rate = phy_.rates().max_supported(pr, phy_.sinr(pr, 0.0));
      if (!rate) continue;
      Link link;
      link.id = links_.size();
      link.tx = tx;
      link.rx = rx;
      link.length_m = geom::distance(nodes_[tx].position, nodes_[rx].position);
      link.best_rate_alone = *rate;
      link.best_mbps_alone = phy_.rates()[*rate].mbps;
      by_pair_[tx][rx] = link.id;
      links_from_[tx].push_back(link.id);
      links_.push_back(link);
    }
  }
}

const Node& Network::node(NodeId id) const {
  MRWSN_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Network::link(LinkId id) const {
  MRWSN_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

std::optional<LinkId> Network::find_link(NodeId tx, NodeId rx) const {
  MRWSN_REQUIRE(tx < nodes_.size() && rx < nodes_.size(), "node id out of range");
  return by_pair_[tx][rx];
}

const std::vector<LinkId>& Network::links_from(NodeId node) const {
  MRWSN_REQUIRE(node < nodes_.size(), "node id out of range");
  return links_from_[node];
}

double Network::distance(NodeId a, NodeId b) const {
  MRWSN_REQUIRE(a < nodes_.size() && b < nodes_.size(), "node id out of range");
  return geom::distance(nodes_[a].position, nodes_[b].position);
}

double Network::received_power(NodeId from, NodeId at) const {
  const double gain = shadowing_ ? shadowing_->gain(from, at) : 1.0;
  return gain * phy_.received_power(distance(from, at));
}

}  // namespace mrwsn::net
