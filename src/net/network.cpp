#include "net/network.hpp"

#include "util/error.hpp"

namespace mrwsn::net {

Network::Network(std::vector<geom::Point> positions, phy::PhyModel phy)
    : Network(std::move(positions), std::move(phy), phy::Shadowing(0.0, 0)) {}

Network::Network(std::vector<geom::Point> positions, phy::PhyModel phy,
                 phy::Shadowing shadowing)
    : phy_(std::move(phy)) {
  if (shadowing.sigma_db() > 0.0) shadowing_ = shadowing;
  MRWSN_REQUIRE(!positions.empty(), "a network needs at least one node");
  nodes_.reserve(positions.size());
  for (NodeId id = 0; id < positions.size(); ++id)
    nodes_.push_back(Node{id, positions[id]});

  const std::size_t n = nodes_.size();
  node_power_.assign(n, phy_.tx_power_watt());
  links_from_.assign(n, {});
  links_to_.assign(n, {});
  by_pair_.assign(n, std::vector<std::optional<LinkId>>(n));

  for (NodeId tx = 0; tx < n; ++tx) {
    for (NodeId rx = 0; rx < n; ++rx) {
      if (tx == rx) continue;
      // Link existence and its lone rate follow the (possibly shadowed)
      // received power: Eq. 1 with zero interference.
      const double pr = received_power(tx, rx);
      const auto rate = phy_.rates().max_supported(pr, phy_.sinr(pr, 0.0));
      if (!rate) continue;
      Link link;
      link.id = links_.size();
      link.tx = tx;
      link.rx = rx;
      link.length_m = geom::distance(nodes_[tx].position, nodes_[rx].position);
      link.best_rate_alone = *rate;
      link.best_mbps_alone = phy_.rates()[*rate].mbps;
      by_pair_[tx][rx] = link.id;
      links_from_[tx].push_back(link.id);
      links_to_[rx].push_back(link.id);
      links_.push_back(link);
    }
  }
}

void Network::check_node(NodeId id) const {
  MRWSN_REQUIRE(id < nodes_.size(), "node id out of range");
}

const Node& Network::node(NodeId id) const {
  check_node(id);
  return nodes_[id];
}

const Link& Network::link(LinkId id) const {
  MRWSN_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

std::optional<LinkId> Network::find_link(NodeId tx, NodeId rx) const {
  check_node(tx);
  check_node(rx);
  return by_pair_[tx][rx];
}

const std::vector<LinkId>& Network::links_from(NodeId node) const {
  check_node(node);
  return links_from_[node];
}

const std::vector<LinkId>& Network::links_to(NodeId node) const {
  check_node(node);
  return links_to_[node];
}

double Network::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return geom::distance(nodes_[a].position, nodes_[b].position);
}

double Network::received_power(NodeId from, NodeId at) const {
  const double gain = shadowing_ ? shadowing_->gain(from, at) : 1.0;
  // Per-node power scales the pathloss-model power (which assumes the
  // radio's nominal transmit power) linearly.
  const double scale = node_power_[from] / phy_.tx_power_watt();
  return gain * scale * phy_.received_power(distance(from, at));
}

void Network::set_position(NodeId id, geom::Point position) {
  check_node(id);
  nodes_[id].position = position;
}

void Network::set_node_tx_power(NodeId id, double tx_power_watt) {
  check_node(id);
  MRWSN_REQUIRE(tx_power_watt > 0.0, "node tx power must be positive");
  node_power_[id] = tx_power_watt;
}

double Network::node_tx_power(NodeId id) const {
  check_node(id);
  return node_power_[id];
}

NodeId Network::add_node(geom::Point position) {
  const NodeId id = nodes_.size();
  nodes_.push_back(Node{id, position});
  node_power_.push_back(phy_.tx_power_watt());
  links_from_.emplace_back();
  links_to_.emplace_back();
  for (auto& row : by_pair_) row.emplace_back();
  by_pair_.emplace_back(nodes_.size());
  return id;
}

void Network::set_node_alive(NodeId id, bool alive) {
  check_node(id);
  nodes_[id].alive = alive;
}

void Network::set_rate_cap(LinkId id, phy::RateIndex cap) {
  MRWSN_REQUIRE(id < links_.size(), "link id out of range");
  MRWSN_REQUIRE(cap < phy_.rates().size(), "rate cap out of range");
  links_[id].rate_cap = cap;
}

std::optional<Network::LinkRefresh> Network::refresh_link(NodeId tx,
                                                          NodeId rx) {
  check_node(tx);
  check_node(rx);
  MRWSN_REQUIRE(tx != rx, "a link needs distinct endpoints");

  // Same decodability rule as the constructor — but a dead endpoint kills
  // the link regardless of signal.
  std::optional<phy::RateIndex> rate;
  if (nodes_[tx].alive && nodes_[rx].alive) {
    const double pr = received_power(tx, rx);
    rate = phy_.rates().max_supported(pr, phy_.sinr(pr, 0.0));
  }

  const std::optional<LinkId> existing = by_pair_[tx][rx];
  if (!existing) {
    if (!rate) return std::nullopt;
    Link link;
    link.id = links_.size();
    link.tx = tx;
    link.rx = rx;
    link.length_m = distance(tx, rx);
    link.best_rate_alone = *rate;
    link.best_mbps_alone = phy_.rates()[*rate].mbps;
    by_pair_[tx][rx] = link.id;
    links_from_[tx].push_back(link.id);
    links_to_[rx].push_back(link.id);
    links_.push_back(link);
    return LinkRefresh{link.id, /*created=*/true, /*changed=*/true};
  }

  Link& link = links_[*existing];
  const Link before = link;
  link.length_m = distance(tx, rx);
  link.alive = rate.has_value();
  if (rate) {
    link.best_rate_alone = *rate;
    link.best_mbps_alone = phy_.rates()[*rate].mbps;
  } else {
    link.best_mbps_alone = 0.0;
  }
  const bool changed = link.alive != before.alive ||
                       link.length_m != before.length_m ||
                       link.best_rate_alone != before.best_rate_alone ||
                       link.best_mbps_alone != before.best_mbps_alone;
  return LinkRefresh{link.id, /*created=*/false, changed};
}

}  // namespace mrwsn::net
