#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mrwsn::geom {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_(cell_size) {
  MRWSN_REQUIRE(cell_size > 0.0, "spatial grid cell size must be positive");
}

std::int64_t SpatialGrid::cell_of(double coord) const {
  return static_cast<std::int64_t>(std::floor(coord / cell_size_));
}

std::uint64_t SpatialGrid::key_of(Point p) const {
  // Pack the two signed cell indices into one 64-bit key. 2^32 cells per
  // axis at any practical cell size dwarfs every scenario extent.
  const auto cx = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(cell_of(p.x)));
  const auto cy = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(cell_of(p.y)));
  return (cx << 32) | cy;
}

void SpatialGrid::build(const std::vector<Point>& points) {
  cells_.clear();
  position_ = points;
  present_.assign(points.size(), 1);
  tracked_ = points.size();
  for (std::size_t id = 0; id < points.size(); ++id)
    cells_[key_of(points[id])].push_back(id);
}

void SpatialGrid::insert(std::size_t id, Point position) {
  MRWSN_REQUIRE(!contains(id), "spatial grid id already present");
  if (id >= position_.size()) {
    position_.resize(id + 1);
    present_.resize(id + 1, 0);
  }
  position_[id] = position;
  present_[id] = 1;
  ++tracked_;
  cells_[key_of(position)].push_back(id);
}

void SpatialGrid::remove(std::size_t id) {
  MRWSN_REQUIRE(contains(id), "spatial grid id not present");
  auto& bucket = cells_[key_of(position_[id])];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  present_[id] = 0;
  --tracked_;
}

void SpatialGrid::move(std::size_t id, Point position) {
  MRWSN_REQUIRE(contains(id), "spatial grid id not present");
  const std::uint64_t from = key_of(position_[id]);
  const std::uint64_t to = key_of(position);
  position_[id] = position;
  if (from == to) return;
  auto& bucket = cells_[from];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  cells_[to].push_back(id);
}

bool SpatialGrid::contains(std::size_t id) const {
  return id < present_.size() && present_[id] != 0;
}

void SpatialGrid::neighbors_within(Point centre, double radius,
                                   std::vector<std::size_t>* out) const {
  out->clear();
  MRWSN_REQUIRE(radius >= 0.0, "query radius must be non-negative");
  const double r_sq = radius * radius;
  const std::int64_t x_lo = cell_of(centre.x - radius);
  const std::int64_t x_hi = cell_of(centre.x + radius);
  const std::int64_t y_lo = cell_of(centre.y - radius);
  const std::int64_t y_hi = cell_of(centre.y + radius);
  for (std::int64_t cx = x_lo; cx <= x_hi; ++cx) {
    for (std::int64_t cy = y_lo; cy <= y_hi; ++cy) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
      const auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (const std::size_t id : it->second)
        if (distance_sq(position_[id], centre) <= r_sq) out->push_back(id);
    }
  }
  std::sort(out->begin(), out->end());
}

}  // namespace mrwsn::geom
