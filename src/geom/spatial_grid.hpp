#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.hpp"

namespace mrwsn::geom {

/// Uniform-cell spatial hash over 2-D points, the localization structure of
/// the dynamic-topology machinery (core::TopologyDelta): a node move or
/// join must discover which other nodes are close enough to gain or lose a
/// link, and the grid answers that with a handful of cell probes instead of
/// a full O(n) position scan.
///
/// Cells are `cell_size` metres square. A radius-r query inspects the
/// ceil(r / cell_size)-ring of cells around the centre and filters by exact
/// squared distance, so results are independent of the cell size chosen;
/// `cell_size` only tunes how many candidates each probe touches. Ids are
/// dense indices chosen by the caller (node ids); the grid tracks each id's
/// current position so movement is a two-cell update.
///
/// Deterministic: query results are returned sorted ascending by id.
class SpatialGrid {
 public:
  /// `cell_size` must be positive; pick the dominant query radius (the
  /// maximum link-discovery range) so radius queries touch ~9 cells.
  explicit SpatialGrid(double cell_size);

  /// Rebuild from scratch: id i sits at points[i].
  void build(const std::vector<Point>& points);

  /// Track a new id (id must not be present).
  void insert(std::size_t id, Point position);

  /// Stop tracking `id` (must be present).
  void remove(std::size_t id);

  /// Update `id`'s position (must be present). Cheap when the move stays
  /// within one cell.
  void move(std::size_t id, Point position);

  bool contains(std::size_t id) const;
  std::size_t size() const { return tracked_; }

  /// Every tracked id within `radius` metres of `centre` (inclusive),
  /// ascending. `out` is cleared first. Ids the caller removed never
  /// appear; the queried centre need not be a tracked point.
  void neighbors_within(Point centre, double radius,
                        std::vector<std::size_t>* out) const;

 private:
  std::int64_t cell_of(double coord) const;
  std::uint64_t key_of(Point p) const;

  double cell_size_;
  std::size_t tracked_ = 0;
  // id -> current position; parallel `present_` flags (ids are dense).
  std::vector<Point> position_;
  std::vector<char> present_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cells_;
};

}  // namespace mrwsn::geom
