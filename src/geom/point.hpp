#pragma once

#include <cmath>

namespace mrwsn::geom {

/// A 2-D position in metres. Nodes in the paper's evaluation live in a
/// 400 m x 600 m rectangle; all geometry in this library is planar.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
constexpr Point operator*(double s, Point p) { return {s * p.x, s * p.y}; }

/// Squared Euclidean distance (cheap; use for comparisons).
constexpr double distance_sq(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance in metres.
inline double distance(Point a, Point b) { return std::sqrt(distance_sq(a, b)); }

}  // namespace mrwsn::geom
