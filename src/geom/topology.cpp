#include "geom/topology.hpp"

#include <cmath>
#include <numbers>
#include <queue>

#include "util/error.hpp"

namespace mrwsn::geom {

std::vector<Point> random_rectangle(std::size_t count, double width, double height,
                                    Rng& rng) {
  MRWSN_REQUIRE(width > 0.0 && height > 0.0, "area dimensions must be positive");
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({rng.uniform(0.0, width), rng.uniform(0.0, height)});
  }
  return points;
}

bool is_connected_at_range(const std::vector<Point>& points, double range) {
  if (points.empty()) return true;
  const double range_sq = range * range;
  std::vector<char> seen(points.size(), 0);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < points.size(); ++v) {
      if (!seen[v] && distance_sq(points[u], points[v]) <= range_sq) {
        seen[v] = 1;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == points.size();
}

std::vector<Point> connected_random_rectangle(std::size_t count, double width,
                                              double height, double range, Rng& rng,
                                              int max_attempts) {
  MRWSN_REQUIRE(range > 0.0, "connectivity range must be positive");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto points = random_rectangle(count, width, height, rng);
    if (is_connected_at_range(points, range)) return points;
  }
  throw PreconditionError(
      "could not draw a connected placement; widen the range or shrink the area");
}

std::vector<Point> connected_random_density(std::size_t count, double range,
                                            double target_degree, Rng& rng,
                                            int max_attempts) {
  MRWSN_REQUIRE(count >= 1, "need at least one node");
  MRWSN_REQUIRE(range > 0.0, "connectivity range must be positive");
  MRWSN_REQUIRE(target_degree > 0.0, "target degree must be positive");
  const double side =
      range * std::sqrt(static_cast<double>(count) * std::numbers::pi /
                        target_degree);
  return connected_random_rectangle(count, side, side, range, rng,
                                    max_attempts);
}

std::vector<Point> chain(std::size_t count, double spacing) {
  MRWSN_REQUIRE(spacing > 0.0, "chain spacing must be positive");
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    points.push_back({static_cast<double>(i) * spacing, 0.0});
  return points;
}

std::vector<Point> grid(std::size_t rows, std::size_t cols, double spacing) {
  MRWSN_REQUIRE(spacing > 0.0, "grid spacing must be positive");
  std::vector<Point> points;
  points.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      points.push_back({static_cast<double>(c) * spacing,
                        static_cast<double>(r) * spacing});
  return points;
}

}  // namespace mrwsn::geom
