#pragma once

#include <cstddef>
#include <vector>

#include "geom/point.hpp"
#include "util/rng.hpp"

namespace mrwsn::geom {

/// Node placements used by the evaluation. Every generator is fully
/// deterministic given its inputs (the Rng carries the seed).

/// `count` nodes placed uniformly at random in [0, width] x [0, height].
/// This is the paper's Section 5.2 topology with width=400, height=600.
std::vector<Point> random_rectangle(std::size_t count, double width, double height,
                                    Rng& rng);

/// Like random_rectangle, but re-draws placements until every node has at
/// least one neighbour within `range` metres and the whole placement is
/// connected at that range (up to `max_attempts` re-draws; throws
/// PreconditionError if none succeeds). Guarantees routable topologies.
std::vector<Point> connected_random_rectangle(std::size_t count, double width,
                                              double height, double range, Rng& rng,
                                              int max_attempts = 100);

/// `count` nodes in a square sized so that the *expected* number of
/// neighbours within `range` metres is `target_degree` (the square's area
/// is count * pi * range^2 / target_degree), re-drawn until the placement
/// is connected at `range`. This keeps node density constant as `count`
/// grows, which is what the scaled 100-1000-node MAC experiments need:
/// a 1000-node draw contends like a 100-node draw, just over more area.
/// target_degree must comfortably exceed ln(count) or the connectivity
/// re-draws are unlikely to succeed (throws PreconditionError after
/// `max_attempts`).
std::vector<Point> connected_random_density(std::size_t count, double range,
                                            double target_degree, Rng& rng,
                                            int max_attempts = 100);

/// `count` nodes on a straight line, `spacing` metres apart, starting at
/// the origin. Used for chain scenarios like Fig. 1.
std::vector<Point> chain(std::size_t count, double spacing);

/// rows x cols nodes on a regular grid with the given spacing.
std::vector<Point> grid(std::size_t rows, std::size_t cols, double spacing);

/// True when the placement is connected when nodes within `range` metres
/// are considered adjacent.
bool is_connected_at_range(const std::vector<Point>& points, double range);

}  // namespace mrwsn::geom
