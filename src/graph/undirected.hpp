#pragma once

#include <cstddef>
#include <vector>

#include "util/bitset.hpp"

namespace mrwsn::graph {

using Vertex = std::size_t;

/// A simple undirected graph over vertices 0..n-1, with both a packed
/// bitset adjacency matrix (O(1) edge queries and word-wise neighbourhood
/// intersection, the substrate of Bron–Kerbosch) and adjacency lists.
/// Used for conflict/compatibility graphs over (link, rate) couples.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t num_vertices);

  std::size_t size() const { return adjacency_.size(); }

  /// Add the edge {u, v}; self-loops are rejected, duplicates ignored.
  void add_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  const std::vector<Vertex>& neighbors(Vertex v) const;

  /// Packed neighbourhood row of `v` (util::BitMatrix layout, row_words()
  /// words). Stable while no edge is added.
  const util::BitWord* neighbor_bits(Vertex v) const { return matrix_.row(v); }

  /// Words per neighbourhood row.
  std::size_t row_words() const { return matrix_.words(); }

  /// The packed adjacency matrix itself (square, symmetric, zero diagonal).
  const util::BitMatrix& adjacency_matrix() const { return matrix_; }

  std::size_t num_edges() const { return num_edges_; }

  /// The complement graph (edges exactly where this graph has none).
  /// Maximal independent sets of G are maximal cliques of complement(G).
  UndirectedGraph complement() const;

 private:
  util::BitMatrix matrix_;
  std::vector<std::vector<Vertex>> adjacency_;
  std::size_t num_edges_ = 0;
};

/// Enumerate all maximal cliques with Bron–Kerbosch (Tomita pivoting) over
/// packed bitset candidate/excluded sets: P ∩ N(v) is word-wise AND +
/// popcount. Stops after `limit` cliques (throws InvariantError if
/// exceeded, so an unexpectedly huge enumeration fails loudly instead of
/// hanging). Each clique is sorted ascending; clique order is unspecified.
std::vector<std::vector<Vertex>> maximal_cliques(const UndirectedGraph& g,
                                                 std::size_t limit = 1u << 22);

/// Same enumeration over a graph given directly as a packed adjacency
/// matrix (square, symmetric, zero diagonal; row r = neighbourhood of r).
/// Lets callers that already hold bitset rows — core::ConflictMatrix — run
/// Bron–Kerbosch without materializing an UndirectedGraph.
std::vector<std::vector<Vertex>> maximal_cliques(
    const util::BitMatrix& adjacency, std::size_t limit = 1u << 22);

/// The pre-bitset vector-based Bron–Kerbosch, retained as the reference
/// implementation for the parity test-suite and the before/after
/// microbenchmarks. Same contract as maximal_cliques.
std::vector<std::vector<Vertex>> maximal_cliques_reference(
    const UndirectedGraph& g, std::size_t limit = 1u << 22);

/// Enumerate all maximal independent sets (maximal cliques of the
/// complement graph).
std::vector<std::vector<Vertex>> maximal_independent_sets(
    const UndirectedGraph& g, std::size_t limit = 1u << 22);

}  // namespace mrwsn::graph
