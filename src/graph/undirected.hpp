#pragma once

#include <cstddef>
#include <vector>

namespace mrwsn::graph {

using Vertex = std::size_t;

/// A simple undirected graph over vertices 0..n-1, with both an adjacency
/// matrix (O(1) edge queries, needed by Bron–Kerbosch) and adjacency lists.
/// Used for conflict/compatibility graphs over (link, rate) couples.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t num_vertices);

  std::size_t size() const { return adjacency_.size(); }

  /// Add the edge {u, v}; self-loops are rejected, duplicates ignored.
  void add_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  const std::vector<Vertex>& neighbors(Vertex v) const;

  std::size_t num_edges() const { return num_edges_; }

  /// The complement graph (edges exactly where this graph has none).
  /// Maximal independent sets of G are maximal cliques of complement(G).
  UndirectedGraph complement() const;

 private:
  std::vector<std::vector<char>> matrix_;
  std::vector<std::vector<Vertex>> adjacency_;
  std::size_t num_edges_ = 0;
};

/// Enumerate all maximal cliques with Bron–Kerbosch (Tomita pivoting).
/// Stops after `limit` cliques (throws InvariantError if exceeded, so an
/// unexpectedly huge enumeration fails loudly instead of hanging).
std::vector<std::vector<Vertex>> maximal_cliques(const UndirectedGraph& g,
                                                 std::size_t limit = 1u << 22);

/// Enumerate all maximal independent sets (maximal cliques of the
/// complement graph).
std::vector<std::vector<Vertex>> maximal_independent_sets(
    const UndirectedGraph& g, std::size_t limit = 1u << 22);

}  // namespace mrwsn::graph
