#include "graph/undirected.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mrwsn::graph {

using util::BitWord;

UndirectedGraph::UndirectedGraph(std::size_t num_vertices)
    : matrix_(num_vertices, num_vertices), adjacency_(num_vertices) {}

void UndirectedGraph::add_edge(Vertex u, Vertex v) {
  MRWSN_REQUIRE(u < size() && v < size(), "vertex out of range");
  MRWSN_REQUIRE(u != v, "self-loops are not allowed");
  if (matrix_.test(u, v)) return;
  matrix_.set(u, v);
  matrix_.set(v, u);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
}

bool UndirectedGraph::has_edge(Vertex u, Vertex v) const {
  MRWSN_REQUIRE(u < size() && v < size(), "vertex out of range");
  return matrix_.test(u, v);
}

const std::vector<Vertex>& UndirectedGraph::neighbors(Vertex v) const {
  MRWSN_REQUIRE(v < size(), "vertex out of range");
  return adjacency_[v];
}

UndirectedGraph UndirectedGraph::complement() const {
  UndirectedGraph g(size());
  for (Vertex u = 0; u < size(); ++u)
    for (Vertex v = u + 1; v < size(); ++v)
      if (!matrix_.test(u, v)) g.add_edge(u, v);
  return g;
}

namespace {

/// Bron–Kerbosch with Tomita pivoting where P and X are packed bitsets.
/// Each recursion level uses three preallocated rows from a contiguous
/// arena (depth is bounded by the vertex count), so the whole enumeration
/// performs no per-node heap allocation: the inner work is P ∩ N(v) as
/// word-wise AND and pivot scoring as AND + popcount.
class BitsetCliqueEnumerator {
 public:
  BitsetCliqueEnumerator(const util::BitMatrix& adj, std::size_t limit)
      : adj_(adj), limit_(limit), words_(adj.words()),
        arena_((adj.rows() + 1) * 3 * words_, 0) {}

  std::vector<std::vector<Vertex>> run() {
    const std::size_t n = adj_.rows();
    BitWord* p = frame_row(0, 0);
    BitWord* x = frame_row(0, 1);
    for (Vertex v = 0; v < n; ++v) util::bits_set(p, v);
    r_.reserve(n);
    expand(p, x, 0);
    return std::move(out_);
  }

 private:
  BitWord* frame_row(std::size_t depth, int which) {
    return arena_.data() + (depth * 3 + static_cast<std::size_t>(which)) * words_;
  }

  void expand(BitWord* p, BitWord* x, std::size_t depth) {
    if (util::bits_none(p, words_) && util::bits_none(x, words_)) {
      MRWSN_ASSERT(out_.size() < limit_, "maximal clique enumeration exceeded limit");
      out_.push_back(r_);
      return;
    }

    // Tomita pivot: the vertex of P ∪ X with the most neighbours in P.
    Vertex pivot = 0;
    std::size_t best = 0;
    bool found = false;
    for (const BitWord* pool : {p, x}) {
      util::bits_for_each(pool, words_, [&](std::size_t u) {
        const std::size_t count = util::bits_count_and(p, adj_.row(u), words_);
        if (!found || count > best) {
          pivot = u;
          best = count;
          found = true;
        }
      });
    }

    // Candidates: P minus the pivot's neighbourhood, fixed before the loop
    // (each candidate stays in P until its own turn, so the snapshot is
    // exactly the set the classic formulation walks).
    BitWord* cand = frame_row(depth, 2);
    util::bits_and_not(cand, p, adj_.row(pivot), words_);
    BitWord* p_next = frame_row(depth + 1, 0);
    BitWord* x_next = frame_row(depth + 1, 1);
    util::bits_for_each(cand, words_, [&](std::size_t v) {
      const BitWord* nv = adj_.row(v);
      util::bits_and(p_next, p, nv, words_);
      util::bits_and(x_next, x, nv, words_);
      r_.push_back(v);
      expand(p_next, x_next, depth + 1);
      r_.pop_back();

      util::bits_reset(p, v);
      util::bits_set(x, v);
    });
  }

  const util::BitMatrix& adj_;
  std::size_t limit_;
  std::size_t words_;
  std::vector<BitWord> arena_;  // two P/X rows per recursion depth
  std::vector<Vertex> r_;
  std::vector<std::vector<Vertex>> out_;
};

/// The original vector-based Bron–Kerbosch (see maximal_cliques_reference).
class ReferenceCliqueEnumerator {
 public:
  ReferenceCliqueEnumerator(const UndirectedGraph& g, std::size_t limit)
      : g_(g), limit_(limit) {}

  std::vector<std::vector<Vertex>> run() {
    std::vector<Vertex> r;
    std::vector<Vertex> p(g_.size());
    for (Vertex v = 0; v < g_.size(); ++v) p[v] = v;
    expand(r, std::move(p), {});
    return std::move(out_);
  }

 private:
  void expand(std::vector<Vertex>& r, std::vector<Vertex> p, std::vector<Vertex> x) {
    if (p.empty() && x.empty()) {
      MRWSN_ASSERT(out_.size() < limit_, "maximal clique enumeration exceeded limit");
      out_.push_back(r);
      return;
    }
    // Tomita pivot: the vertex of P ∪ X with the most neighbours in P.
    Vertex pivot = 0;
    std::size_t best = 0;
    bool found = false;
    for (const auto& pool : {p, x}) {
      for (Vertex u : pool) {
        std::size_t count = 0;
        for (Vertex v : p)
          if (g_.has_edge(u, v)) ++count;
        if (!found || count > best) {
          pivot = u;
          best = count;
          found = true;
        }
      }
    }

    // Candidates: P minus the pivot's neighbourhood.
    std::vector<Vertex> candidates;
    for (Vertex v : p)
      if (!g_.has_edge(pivot, v)) candidates.push_back(v);

    for (Vertex v : candidates) {
      std::vector<Vertex> p_next, x_next;
      for (Vertex u : p)
        if (g_.has_edge(v, u)) p_next.push_back(u);
      for (Vertex u : x)
        if (g_.has_edge(v, u)) x_next.push_back(u);

      r.push_back(v);
      expand(r, std::move(p_next), std::move(x_next));
      r.pop_back();

      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  const UndirectedGraph& g_;
  std::size_t limit_;
  std::vector<std::vector<Vertex>> out_;
};

}  // namespace

std::vector<std::vector<Vertex>> maximal_cliques(const UndirectedGraph& g,
                                                 std::size_t limit) {
  return maximal_cliques(g.adjacency_matrix(), limit);
}

std::vector<std::vector<Vertex>> maximal_cliques(const util::BitMatrix& adjacency,
                                                 std::size_t limit) {
  if (adjacency.rows() == 0) return {};
  MRWSN_REQUIRE(adjacency.rows() == adjacency.cols(),
                "adjacency matrix must be square");
  BitsetCliqueEnumerator enumerator(adjacency, limit);
  auto cliques = enumerator.run();
  for (auto& clique : cliques) std::sort(clique.begin(), clique.end());
  return cliques;
}

std::vector<std::vector<Vertex>> maximal_cliques_reference(
    const UndirectedGraph& g, std::size_t limit) {
  if (g.size() == 0) return {};
  ReferenceCliqueEnumerator enumerator(g, limit);
  auto cliques = enumerator.run();
  for (auto& clique : cliques) std::sort(clique.begin(), clique.end());
  return cliques;
}

std::vector<std::vector<Vertex>> maximal_independent_sets(const UndirectedGraph& g,
                                                          std::size_t limit) {
  return maximal_cliques(g.complement(), limit);
}

}  // namespace mrwsn::graph
