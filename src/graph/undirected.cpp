#include "graph/undirected.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mrwsn::graph {

UndirectedGraph::UndirectedGraph(std::size_t num_vertices)
    : matrix_(num_vertices, std::vector<char>(num_vertices, 0)),
      adjacency_(num_vertices) {}

void UndirectedGraph::add_edge(Vertex u, Vertex v) {
  MRWSN_REQUIRE(u < size() && v < size(), "vertex out of range");
  MRWSN_REQUIRE(u != v, "self-loops are not allowed");
  if (matrix_[u][v]) return;
  matrix_[u][v] = matrix_[v][u] = 1;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
}

bool UndirectedGraph::has_edge(Vertex u, Vertex v) const {
  MRWSN_REQUIRE(u < size() && v < size(), "vertex out of range");
  return matrix_[u][v] != 0;
}

const std::vector<Vertex>& UndirectedGraph::neighbors(Vertex v) const {
  MRWSN_REQUIRE(v < size(), "vertex out of range");
  return adjacency_[v];
}

UndirectedGraph UndirectedGraph::complement() const {
  UndirectedGraph g(size());
  for (Vertex u = 0; u < size(); ++u)
    for (Vertex v = u + 1; v < size(); ++v)
      if (!matrix_[u][v]) g.add_edge(u, v);
  return g;
}

namespace {

/// Bron–Kerbosch with Tomita pivoting over vertex index vectors.
class CliqueEnumerator {
 public:
  CliqueEnumerator(const UndirectedGraph& g, std::size_t limit)
      : g_(g), limit_(limit) {}

  std::vector<std::vector<Vertex>> run() {
    std::vector<Vertex> r;
    std::vector<Vertex> p(g_.size());
    for (Vertex v = 0; v < g_.size(); ++v) p[v] = v;
    expand(r, std::move(p), {});
    return std::move(out_);
  }

 private:
  void expand(std::vector<Vertex>& r, std::vector<Vertex> p, std::vector<Vertex> x) {
    if (p.empty() && x.empty()) {
      MRWSN_ASSERT(out_.size() < limit_, "maximal clique enumeration exceeded limit");
      out_.push_back(r);
      return;
    }
    // Tomita pivot: the vertex of P ∪ X with the most neighbours in P.
    Vertex pivot = 0;
    std::size_t best = 0;
    bool found = false;
    for (const auto& pool : {p, x}) {
      for (Vertex u : pool) {
        std::size_t count = 0;
        for (Vertex v : p)
          if (g_.has_edge(u, v)) ++count;
        if (!found || count > best) {
          pivot = u;
          best = count;
          found = true;
        }
      }
    }

    // Candidates: P minus the pivot's neighbourhood.
    std::vector<Vertex> candidates;
    for (Vertex v : p)
      if (!g_.has_edge(pivot, v)) candidates.push_back(v);

    for (Vertex v : candidates) {
      std::vector<Vertex> p_next, x_next;
      for (Vertex u : p)
        if (g_.has_edge(v, u)) p_next.push_back(u);
      for (Vertex u : x)
        if (g_.has_edge(v, u)) x_next.push_back(u);

      r.push_back(v);
      expand(r, std::move(p_next), std::move(x_next));
      r.pop_back();

      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  const UndirectedGraph& g_;
  std::size_t limit_;
  std::vector<std::vector<Vertex>> out_;
};

}  // namespace

std::vector<std::vector<Vertex>> maximal_cliques(const UndirectedGraph& g,
                                                 std::size_t limit) {
  if (g.size() == 0) return {};
  CliqueEnumerator enumerator(g, limit);
  auto cliques = enumerator.run();
  for (auto& clique : cliques) std::sort(clique.begin(), clique.end());
  return cliques;
}

std::vector<std::vector<Vertex>> maximal_independent_sets(const UndirectedGraph& g,
                                                          std::size_t limit) {
  return maximal_cliques(g.complement(), limit);
}

}  // namespace mrwsn::graph
