#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace mrwsn::graph {

Digraph::Digraph(std::size_t num_vertices) : out_(num_vertices) {}

std::size_t Digraph::add_edge(std::size_t from, std::size_t to, double weight) {
  MRWSN_REQUIRE(from < num_vertices() && to < num_vertices(), "vertex out of range");
  MRWSN_REQUIRE(weight >= 0.0, "Dijkstra requires non-negative weights");
  const std::size_t id = edges_.size();
  edges_.push_back(Edge{id, from, to, weight});
  out_[from].push_back(id);
  return id;
}

const Digraph::Edge& Digraph::edge(std::size_t id) const {
  MRWSN_REQUIRE(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

const std::vector<std::size_t>& Digraph::out_edges(std::size_t vertex) const {
  MRWSN_REQUIRE(vertex < num_vertices(), "vertex out of range");
  return out_[vertex];
}

PathResult dijkstra(const Digraph& g, std::size_t source, std::size_t target,
                    const std::vector<char>* banned_edges,
                    const std::vector<char>* banned_vertices) {
  MRWSN_REQUIRE(source < g.num_vertices() && target < g.num_vertices(),
                "vertex out of range");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  auto edge_banned = [&](std::size_t id) {
    return banned_edges != nullptr && id < banned_edges->size() && (*banned_edges)[id];
  };
  auto vertex_banned = [&](std::size_t v) {
    return banned_vertices != nullptr && v < banned_vertices->size() &&
           (*banned_vertices)[v];
  };

  PathResult result;
  if (vertex_banned(source) || vertex_banned(target)) return result;

  std::vector<double> dist(g.num_vertices(), kInf);
  std::vector<std::size_t> parent_edge(g.num_vertices(), kNone);
  using Item = std::pair<double, std::size_t>;  // (dist, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == target) break;
    for (std::size_t edge_id : g.out_edges(u)) {
      if (edge_banned(edge_id)) continue;
      const auto& e = g.edge(edge_id);
      if (vertex_banned(e.to)) continue;
      const double candidate = d + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        parent_edge[e.to] = edge_id;
        heap.emplace(candidate, e.to);
      }
    }
  }

  if (dist[target] == kInf) return result;

  result.reachable = true;
  result.cost = dist[target];
  for (std::size_t v = target; v != source;) {
    const std::size_t edge_id = parent_edge[v];
    MRWSN_ASSERT(edge_id != kNone, "broken parent chain in Dijkstra");
    result.edges.push_back(edge_id);
    v = g.edge(edge_id).from;
  }
  std::reverse(result.edges.begin(), result.edges.end());
  result.vertices.push_back(source);
  for (std::size_t edge_id : result.edges)
    result.vertices.push_back(g.edge(edge_id).to);
  return result;
}

std::vector<PathResult> k_shortest_paths(const Digraph& g, std::size_t source,
                                         std::size_t target, std::size_t k) {
  std::vector<PathResult> found;
  if (k == 0) return found;

  PathResult best = dijkstra(g, source, target);
  if (!best.reachable) return found;
  found.push_back(std::move(best));

  // Candidate pool, cheapest first. Paths are compared by edge sequence for
  // de-duplication.
  auto path_less = [](const PathResult& a, const PathResult& b) {
    return a.cost > b.cost;  // min-heap via greater-cost "less"
  };
  std::vector<PathResult> candidates;

  while (found.size() < k) {
    const PathResult& last = found.back();
    // Spur from every prefix of the most recent path.
    for (std::size_t i = 0; i + 1 < last.vertices.size(); ++i) {
      const std::size_t spur_node = last.vertices[i];
      std::vector<char> banned_edges(g.num_edges(), 0);
      std::vector<char> banned_vertices(g.num_vertices(), 0);

      // Ban edges that would recreate a previously found path sharing this
      // root prefix.
      for (const PathResult& p : found) {
        if (p.vertices.size() > i &&
            std::equal(last.vertices.begin(), last.vertices.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       p.vertices.begin())) {
          if (i < p.edges.size()) banned_edges[p.edges[i]] = 1;
        }
      }
      // Ban the root-path vertices (except the spur node) to keep spur
      // paths loop-free.
      for (std::size_t j = 0; j < i; ++j) banned_vertices[last.vertices[j]] = 1;

      PathResult spur = dijkstra(g, spur_node, target, &banned_edges, &banned_vertices);
      if (!spur.reachable) continue;

      // Stitch root + spur.
      PathResult total;
      total.reachable = true;
      total.edges.assign(last.edges.begin(), last.edges.begin() + static_cast<std::ptrdiff_t>(i));
      total.edges.insert(total.edges.end(), spur.edges.begin(), spur.edges.end());
      total.cost = 0.0;
      for (std::size_t edge_id : total.edges) total.cost += g.edge(edge_id).weight;
      total.vertices.push_back(source);
      for (std::size_t edge_id : total.edges)
        total.vertices.push_back(g.edge(edge_id).to);

      const bool duplicate =
          std::any_of(candidates.begin(), candidates.end(),
                      [&](const PathResult& c) { return c.edges == total.edges; }) ||
          std::any_of(found.begin(), found.end(),
                      [&](const PathResult& f) { return f.edges == total.edges; });
      if (!duplicate) {
        candidates.push_back(std::move(total));
        std::push_heap(candidates.begin(), candidates.end(), path_less);
      }
    }

    if (candidates.empty()) break;
    std::pop_heap(candidates.begin(), candidates.end(), path_less);
    found.push_back(std::move(candidates.back()));
    candidates.pop_back();
  }
  return found;
}

}  // namespace mrwsn::graph
