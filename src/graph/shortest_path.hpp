#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace mrwsn::graph {

/// A directed weighted multigraph used for routing. Edge ids are assigned
/// densely in insertion order so callers can map them back to network links.
class Digraph {
 public:
  struct Edge {
    std::size_t id = 0;
    std::size_t from = 0;
    std::size_t to = 0;
    double weight = 0.0;
  };

  explicit Digraph(std::size_t num_vertices);

  /// Add a directed edge with a non-negative weight; returns its id.
  std::size_t add_edge(std::size_t from, std::size_t to, double weight);

  std::size_t num_vertices() const { return out_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  const Edge& edge(std::size_t id) const;
  const std::vector<std::size_t>& out_edges(std::size_t vertex) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> out_;
};

/// Result of a point-to-point shortest-path query.
struct PathResult {
  bool reachable = false;
  double cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> edges;     ///< edge ids, in order
  std::vector<std::size_t> vertices;  ///< vertex ids, edges.size()+1 entries
};

/// Dijkstra from `source` to `target`. `banned_edges` / `banned_vertices`
/// are optional masks (indexed by id) excluded from the search — these are
/// what Yen's algorithm needs to generate spur paths.
PathResult dijkstra(const Digraph& g, std::size_t source, std::size_t target,
                    const std::vector<char>* banned_edges = nullptr,
                    const std::vector<char>* banned_vertices = nullptr);

/// Yen's algorithm: up to `k` loop-free shortest paths in increasing cost
/// order. Returns fewer when the graph has fewer distinct paths.
std::vector<PathResult> k_shortest_paths(const Digraph& g, std::size_t source,
                                         std::size_t target, std::size_t k);

}  // namespace mrwsn::graph
