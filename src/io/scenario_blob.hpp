#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/scenario.hpp"

namespace mrwsn::io {

/// Versioned binary scenario container ("blob"): the on-disk format the
/// admission service loads instead of the line-oriented text format, so a
/// scenario open costs one read + one pass of fixed-width little-endian
/// decodes instead of a tokenizing parse. Layout (all integers and doubles
/// little-endian, no padding):
///
///   u32  magic    0x4257524D ("MRWB")
///   u32  version  1
///   u64  node_count
///   u64  flow_count
///   u64  request_count
///   f64  shadowing_sigma_db
///   u64  shadowing_seed
///   node_count x { f64 x, f64 y }
///   flow_count x { f64 demand_mbps, u64 hop_count, hop_count x u64 node }
///   request_count x { u64 src, u64 dst, f64 demand_mbps }
///
/// The layout round-trips ScenarioFile exactly (doubles are stored
/// bit-for-bit), so text -> blob -> ScenarioFile equals text ->
/// ScenarioFile. On little-endian hosts the reader decodes the position
/// array with one bulk copy (the wire layout IS the in-memory layout of
/// geom::Point); on big-endian hosts it falls back to per-field assembly
/// from bytes, which is endianness-safe by construction.
constexpr std::uint32_t kScenarioBlobMagic = 0x4257524Du;  // "MRWB"
constexpr std::uint32_t kScenarioBlobVersion = 1;

/// Serialize to the binary layout above.
std::vector<std::uint8_t> write_scenario_blob(const ScenarioFile& scenario);

/// Decode a blob; throws PreconditionError on bad magic, unsupported
/// version, truncation, or trailing bytes.
ScenarioFile read_scenario_blob(std::span<const std::uint8_t> bytes);

/// True when `bytes` starts with the blob magic (sniffing, any length).
bool is_scenario_blob(std::span<const std::uint8_t> bytes);

/// Write a blob file; throws PreconditionError when the file cannot be
/// created.
void save_scenario_blob(const ScenarioFile& scenario, const std::string& path);

/// Read + decode a blob file.
ScenarioFile load_scenario_blob(const std::string& path);

/// Stable 64-bit scenario identity: FNV-1a over the canonical blob bytes.
/// Two scenarios hash equal iff their ScenarioFile contents are
/// bit-identical, which is what keys core::EnginePool.
std::uint64_t scenario_hash(const ScenarioFile& scenario);

}  // namespace mrwsn::io
