#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mrwsn::io {

/// Minimal RFC-4180-style CSV writer for benchmark/experiment output.
/// Cells containing commas, quotes or newlines are quoted and inner
/// quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Serialize header + rows.
  void write(std::ostream& os) const;
  std::string to_string() const;

  /// Escape one cell per RFC 4180.
  static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse a CSV document produced by CsvWriter (quotes handled); returns
/// rows including the header. Throws PreconditionError on malformed input.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace mrwsn::io
