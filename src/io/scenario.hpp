#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "net/network.hpp"
#include "net/path.hpp"

namespace mrwsn::io {

/// A scenario as stored on disk: node placement, optional shadowing,
/// existing (background) flows given as node paths, and flow requests to
/// route/admit. The format is line-oriented text:
///
///   # comments and blank lines are ignored
///   node <id> <x> <y>          (ids must be dense, starting at 0)
///   shadowing <sigma_db> <seed>
///   flow <demand_mbps> <n0> <n1> ... <nk>
///   request <src> <dst> <demand_mbps>
struct ScenarioFile {
  struct FlowSpec {
    double demand_mbps = 0.0;
    std::vector<net::NodeId> nodes;
  };
  struct Request {
    net::NodeId src = 0;
    net::NodeId dst = 0;
    double demand_mbps = 0.0;
  };

  std::vector<geom::Point> positions;
  double shadowing_sigma_db = 0.0;
  std::uint64_t shadowing_seed = 0;
  std::vector<FlowSpec> flows;
  std::vector<Request> requests;
};

/// Parse a scenario document; throws PreconditionError on malformed input.
ScenarioFile parse_scenario(const std::string& text);

/// Serialize to the same format (round-trips through parse_scenario).
std::string serialize_scenario(const ScenarioFile& scenario);

/// Read a scenario file from disk; throws PreconditionError when the file
/// cannot be opened.
ScenarioFile load_scenario(const std::string& path);

/// Build the network for a scenario (the paper's PHY, plus the scenario's
/// shadowing when sigma > 0).
net::Network build_network(const ScenarioFile& scenario);

/// Resolve the scenario's background flows against a built network;
/// throws PreconditionError if some flow path is not connected.
std::vector<net::Flow> build_flows(const ScenarioFile& scenario,
                                   const net::Network& network);

}  // namespace mrwsn::io
