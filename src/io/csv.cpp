#include "io/csv.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace mrwsn::io {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  MRWSN_REQUIRE(!header_.empty(), "a CSV needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  MRWSN_REQUIRE(row.size() == header_.size(), "row width must match the header");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  bool cell_started = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        MRWSN_REQUIRE(cell.empty() && !cell_started,
                      "quote may only open at the start of a cell");
        quoted = true;
        cell_started = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        cell_started = false;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        row.push_back(std::move(cell));
        cell.clear();
        cell_started = false;
        rows.push_back(std::move(row));
        row.clear();
        break;
      default:
        cell += c;
        cell_started = true;
    }
  }
  MRWSN_REQUIRE(!quoted, "unterminated quoted cell");
  if (cell_started || !cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace mrwsn::io
