#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "net/network.hpp"
#include "phy/rate.hpp"

namespace mrwsn::io {

/// A mobility trace as stored on disk: an ordered list of churn events
/// replayed against a base scenario's topology (waypoint moves, transmit
/// power changes, rate-cap adaptation, node join/leave). The format is
/// line-oriented text, same conventions as scenario files:
///
///   # comments and blank lines are ignored
///   move <node> <x> <y>        (waypoint: the node relocates)
///   power <node> <tx_watt>     (new transmit power, watts, > 0)
///   rate <tx> <rx> <cap>       (cap the tx->rx link's fastest usable rate
///                               index; 0 = unrestricted)
///   join <x> <y>               (a new node appears at the next dense id)
///   leave <node>               (the node departs; its links die)
///
/// Node and link references are validated at REPLAY time against the
/// evolving network (a trace file cannot know how many joins precede an
/// event); the parser validates shape, arity, and value ranges only.
struct MobilityTrace {
  struct Event {
    enum class Kind { kMove, kPower, kRate, kJoin, kLeave };
    Kind kind = Kind::kMove;
    net::NodeId node = 0;         ///< move / power / leave
    geom::Point position{};       ///< move / join
    double tx_power_watt = 0.0;   ///< power
    net::NodeId tx = 0;           ///< rate: link named by its endpoints
    net::NodeId rx = 0;           ///< rate
    phy::RateIndex rate_cap = 0;  ///< rate
  };

  std::vector<Event> events;
};

/// Parse a mobility trace; throws PreconditionError on malformed input.
MobilityTrace parse_mobility(const std::string& text);

/// Serialize to the same format (round-trips through parse_mobility).
std::string serialize_mobility(const MobilityTrace& trace);

/// Read a mobility trace from disk; throws PreconditionError when the file
/// cannot be opened.
MobilityTrace load_mobility(const std::string& path);

}  // namespace mrwsn::io
