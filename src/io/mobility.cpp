#include "io/mobility.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace mrwsn::io {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

double parse_double(const std::string& token, const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    MRWSN_REQUIRE(used == token.size(), std::string("trailing junk in ") + what);
    return value;
  } catch (const std::logic_error&) {
    throw PreconditionError(std::string("cannot parse ") + what + ": '" + token +
                            "'");
  }
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  try {
    // std::stoull accepts "-1" by wrapping; ids are never negative.
    MRWSN_REQUIRE(token.find('-') == std::string::npos,
                  std::string(what) + " cannot be negative");
    std::size_t used = 0;
    const unsigned long long value = std::stoull(token, &used);
    MRWSN_REQUIRE(used == token.size(), std::string("trailing junk in ") + what);
    return static_cast<std::uint64_t>(value);
  } catch (const std::logic_error&) {
    throw PreconditionError(std::string("cannot parse ") + what + ": '" + token +
                            "'");
  }
}

}  // namespace

MobilityTrace parse_mobility(const std::string& text) {
  MobilityTrace trace;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& kind = tokens[0];
    auto fail = [&](const std::string& why) -> void {
      throw PreconditionError("mobility line " + std::to_string(line_no) +
                              ": " + why);
    };

    MobilityTrace::Event event;
    if (kind == "move") {
      if (tokens.size() != 4) fail("expected: move <node> <x> <y>");
      event.kind = MobilityTrace::Event::Kind::kMove;
      event.node = parse_u64(tokens[1], "node id");
      event.position = {parse_double(tokens[2], "x"),
                        parse_double(tokens[3], "y")};
    } else if (kind == "power") {
      if (tokens.size() != 3) fail("expected: power <node> <tx_watt>");
      event.kind = MobilityTrace::Event::Kind::kPower;
      event.node = parse_u64(tokens[1], "node id");
      event.tx_power_watt = parse_double(tokens[2], "tx power");
      if (event.tx_power_watt <= 0.0) fail("tx power must be positive");
    } else if (kind == "rate") {
      if (tokens.size() != 4) fail("expected: rate <tx> <rx> <cap>");
      event.kind = MobilityTrace::Event::Kind::kRate;
      event.tx = parse_u64(tokens[1], "link tx");
      event.rx = parse_u64(tokens[2], "link rx");
      if (event.tx == event.rx) fail("a link needs distinct endpoints");
      event.rate_cap =
          static_cast<phy::RateIndex>(parse_u64(tokens[3], "rate cap"));
    } else if (kind == "join") {
      if (tokens.size() != 3) fail("expected: join <x> <y>");
      event.kind = MobilityTrace::Event::Kind::kJoin;
      event.position = {parse_double(tokens[1], "x"),
                        parse_double(tokens[2], "y")};
    } else if (kind == "leave") {
      if (tokens.size() != 2) fail("expected: leave <node>");
      event.kind = MobilityTrace::Event::Kind::kLeave;
      event.node = parse_u64(tokens[1], "node id");
    } else {
      fail("unknown directive '" + kind + "'");
    }
    trace.events.push_back(event);
  }
  return trace;
}

std::string serialize_mobility(const MobilityTrace& trace) {
  std::ostringstream os;
  os << "# mrwsn mobility trace\n";
  for (const MobilityTrace::Event& event : trace.events) {
    switch (event.kind) {
      case MobilityTrace::Event::Kind::kMove:
        os << "move " << event.node << ' ' << event.position.x << ' '
           << event.position.y << '\n';
        break;
      case MobilityTrace::Event::Kind::kPower:
        os << "power " << event.node << ' ' << event.tx_power_watt << '\n';
        break;
      case MobilityTrace::Event::Kind::kRate:
        os << "rate " << event.tx << ' ' << event.rx << ' '
           << static_cast<std::uint64_t>(event.rate_cap) << '\n';
        break;
      case MobilityTrace::Event::Kind::kJoin:
        os << "join " << event.position.x << ' ' << event.position.y << '\n';
        break;
      case MobilityTrace::Event::Kind::kLeave:
        os << "leave " << event.node << '\n';
        break;
    }
  }
  return os.str();
}

MobilityTrace load_mobility(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  MRWSN_REQUIRE(file.good(), "cannot open mobility trace: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_mobility(buffer.str());
}

}  // namespace mrwsn::io
