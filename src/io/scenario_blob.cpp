#include "io/scenario_blob.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace mrwsn::io {

namespace {

static_assert(sizeof(double) == 8, "the blob layout stores IEEE-754 binary64");

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// One-pass bounds-checked cursor over the blob bytes. Every decode
/// assembles its value from bytes least-significant first, so the result
/// is the little-endian wire value on any host.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32(const char* what) {
    const std::uint8_t* p = take(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
  }

  std::uint64_t u64(const char* what) {
    const std::uint8_t* p = take(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
  }

  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  /// Bulk-decode `count` doubles into `out` (appended). Little-endian
  /// hosts take the memcpy fast path over the whole run.
  void f64_run(std::size_t count, std::vector<double>& out, const char* what) {
    const std::uint8_t* p = take(count * 8, what);
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t base = out.size();
      out.resize(base + count);
      std::memcpy(out.data() + base, p, count * 8);
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t v = 0;
        for (int b = 0; b < 8; ++b) v |= std::uint64_t{p[8 * i + b]} << (8 * b);
        out.push_back(std::bit_cast<double>(v));
      }
    }
  }

  std::size_t remaining() const { return bytes_.size() - at_; }

 private:
  const std::uint8_t* take(std::size_t n, const char* what) {
    MRWSN_REQUIRE(remaining() >= n,
                  std::string("scenario blob truncated reading ") + what);
    const std::uint8_t* p = bytes_.data() + at_;
    at_ += n;
    return p;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

/// Item counts are validated against the bytes actually present before any
/// allocation, so a malicious header cannot request a huge reserve.
std::size_t checked_count(std::uint64_t count, std::size_t min_item_bytes,
                          const Cursor& cursor, const char* what) {
  MRWSN_REQUIRE(count <= cursor.remaining() / min_item_bytes,
                std::string("scenario blob ") + what +
                    " count exceeds the bytes present");
  return static_cast<std::size_t>(count);
}

}  // namespace

std::vector<std::uint8_t> write_scenario_blob(const ScenarioFile& scenario) {
  std::vector<std::uint8_t> out;
  std::size_t flow_nodes = 0;
  for (const auto& flow : scenario.flows) flow_nodes += flow.nodes.size();
  out.reserve(44 + 16 * scenario.positions.size() + 16 * scenario.flows.size() +
              8 * flow_nodes + 24 * scenario.requests.size());
  put_u32(out, kScenarioBlobMagic);
  put_u32(out, kScenarioBlobVersion);
  put_u64(out, scenario.positions.size());
  put_u64(out, scenario.flows.size());
  put_u64(out, scenario.requests.size());
  put_f64(out, scenario.shadowing_sigma_db);
  put_u64(out, scenario.shadowing_seed);
  for (const geom::Point& p : scenario.positions) {
    put_f64(out, p.x);
    put_f64(out, p.y);
  }
  for (const auto& flow : scenario.flows) {
    put_f64(out, flow.demand_mbps);
    put_u64(out, flow.nodes.size());
    for (const net::NodeId node : flow.nodes) put_u64(out, node);
  }
  for (const auto& request : scenario.requests) {
    put_u64(out, request.src);
    put_u64(out, request.dst);
    put_f64(out, request.demand_mbps);
  }
  return out;
}

bool is_scenario_blob(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= std::uint32_t{bytes[i]} << (8 * i);
  return magic == kScenarioBlobMagic;
}

ScenarioFile read_scenario_blob(std::span<const std::uint8_t> bytes) {
  Cursor cursor(bytes);
  MRWSN_REQUIRE(cursor.u32("magic") == kScenarioBlobMagic,
                "not a scenario blob (bad magic)");
  const std::uint32_t version = cursor.u32("version");
  MRWSN_REQUIRE(version == kScenarioBlobVersion,
                "unsupported scenario blob version " + std::to_string(version));
  const std::uint64_t node_count = cursor.u64("node count");
  const std::uint64_t flow_count = cursor.u64("flow count");
  const std::uint64_t request_count = cursor.u64("request count");

  ScenarioFile scenario;
  scenario.shadowing_sigma_db = cursor.f64("shadowing sigma");
  scenario.shadowing_seed = cursor.u64("shadowing seed");

  const std::size_t nodes = checked_count(node_count, 16, cursor, "node");
  {
    // The wire run of {x, y} pairs decodes with one bulk copy on
    // little-endian hosts (f64_run's fast path) and one byte-assembly
    // pass elsewhere; either way it is a single pass over the bytes.
    std::vector<double> raw;
    raw.reserve(nodes * 2);
    cursor.f64_run(nodes * 2, raw, "node positions");
    scenario.positions.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i)
      scenario.positions.push_back({raw[2 * i], raw[2 * i + 1]});
  }

  scenario.flows.reserve(checked_count(flow_count, 16, cursor, "flow"));
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    ScenarioFile::FlowSpec flow;
    flow.demand_mbps = cursor.f64("flow demand");
    const std::size_t hops =
        checked_count(cursor.u64("flow hop count"), 8, cursor, "flow node");
    flow.nodes.reserve(hops);
    for (std::size_t k = 0; k < hops; ++k)
      flow.nodes.push_back(cursor.u64("flow node"));
    scenario.flows.push_back(std::move(flow));
  }

  scenario.requests.reserve(checked_count(request_count, 24, cursor, "request"));
  for (std::uint64_t i = 0; i < request_count; ++i) {
    ScenarioFile::Request request;
    request.src = cursor.u64("request src");
    request.dst = cursor.u64("request dst");
    request.demand_mbps = cursor.f64("request demand");
    scenario.requests.push_back(request);
  }

  MRWSN_REQUIRE(cursor.remaining() == 0,
                "scenario blob has trailing bytes past the declared payload");
  MRWSN_REQUIRE(!scenario.positions.empty(), "scenario blob declares no nodes");
  return scenario;
}

void save_scenario_blob(const ScenarioFile& scenario, const std::string& path) {
  const std::vector<std::uint8_t> bytes = write_scenario_blob(scenario);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  MRWSN_REQUIRE(file.good(), "cannot create scenario blob file: " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  MRWSN_REQUIRE(file.good(), "short write to scenario blob file: " + path);
}

ScenarioFile load_scenario_blob(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  MRWSN_REQUIRE(file.good(), "cannot open scenario blob file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return read_scenario_blob(bytes);
}

std::uint64_t scenario_hash(const ScenarioFile& scenario) {
  // FNV-1a 64 over the canonical blob serialization.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : write_scenario_blob(scenario)) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace mrwsn::io
