#include "io/scenario.hpp"

#include <fstream>
#include <sstream>

#include "io/scenario_blob.hpp"
#include "phy/phy_model.hpp"
#include "phy/shadowing.hpp"
#include "util/error.hpp"

namespace mrwsn::io {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

double parse_double(const std::string& token, const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    MRWSN_REQUIRE(used == token.size(), std::string("trailing junk in ") + what);
    return value;
  } catch (const std::logic_error&) {
    throw PreconditionError(std::string("cannot parse ") + what + ": '" + token +
                            "'");
  }
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(token, &used);
    MRWSN_REQUIRE(used == token.size(), std::string("trailing junk in ") + what);
    return static_cast<std::uint64_t>(value);
  } catch (const std::logic_error&) {
    throw PreconditionError(std::string("cannot parse ") + what + ": '" + token +
                            "'");
  }
}

}  // namespace

ScenarioFile parse_scenario(const std::string& text) {
  ScenarioFile scenario;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& kind = tokens[0];
    auto fail = [&](const std::string& why) -> void {
      throw PreconditionError("scenario line " + std::to_string(line_no) + ": " +
                              why);
    };

    if (kind == "node") {
      if (tokens.size() != 4) fail("expected: node <id> <x> <y>");
      const std::uint64_t id = parse_u64(tokens[1], "node id");
      if (id != scenario.positions.size())
        fail("node ids must be dense and in order");
      scenario.positions.push_back(
          {parse_double(tokens[2], "x"), parse_double(tokens[3], "y")});
    } else if (kind == "shadowing") {
      if (tokens.size() != 3) fail("expected: shadowing <sigma_db> <seed>");
      scenario.shadowing_sigma_db = parse_double(tokens[1], "sigma");
      scenario.shadowing_seed = parse_u64(tokens[2], "seed");
    } else if (kind == "flow") {
      if (tokens.size() < 4) fail("expected: flow <demand> <n0> <n1> ...");
      ScenarioFile::FlowSpec flow;
      flow.demand_mbps = parse_double(tokens[1], "flow demand");
      for (std::size_t i = 2; i < tokens.size(); ++i)
        flow.nodes.push_back(parse_u64(tokens[i], "flow node"));
      scenario.flows.push_back(std::move(flow));
    } else if (kind == "request") {
      if (tokens.size() != 4) fail("expected: request <src> <dst> <demand>");
      scenario.requests.push_back(
          ScenarioFile::Request{parse_u64(tokens[1], "src"),
                                parse_u64(tokens[2], "dst"),
                                parse_double(tokens[3], "request demand")});
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  MRWSN_REQUIRE(!scenario.positions.empty(), "scenario declares no nodes");
  return scenario;
}

std::string serialize_scenario(const ScenarioFile& scenario) {
  std::ostringstream os;
  os << "# mrwsn scenario\n";
  for (std::size_t id = 0; id < scenario.positions.size(); ++id)
    os << "node " << id << ' ' << scenario.positions[id].x << ' '
       << scenario.positions[id].y << '\n';
  if (scenario.shadowing_sigma_db > 0.0)
    os << "shadowing " << scenario.shadowing_sigma_db << ' '
       << scenario.shadowing_seed << '\n';
  for (const auto& flow : scenario.flows) {
    os << "flow " << flow.demand_mbps;
    for (net::NodeId node : flow.nodes) os << ' ' << node;
    os << '\n';
  }
  for (const auto& request : scenario.requests)
    os << "request " << request.src << ' ' << request.dst << ' '
       << request.demand_mbps << '\n';
  return os.str();
}

ScenarioFile load_scenario(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  MRWSN_REQUIRE(file.good(), "cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  // Binary scenario blobs (io/scenario_blob.hpp) are accepted wherever a
  // text scenario is: the magic cannot collide with a text directive.
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text.data());
  if (is_scenario_blob({bytes, text.size()}))
    return read_scenario_blob({bytes, text.size()});
  return parse_scenario(text);
}

net::Network build_network(const ScenarioFile& scenario) {
  if (scenario.shadowing_sigma_db > 0.0) {
    return net::Network(
        scenario.positions, phy::PhyModel::paper_default(),
        phy::Shadowing(scenario.shadowing_sigma_db, scenario.shadowing_seed));
  }
  return net::Network(scenario.positions, phy::PhyModel::paper_default());
}

std::vector<net::Flow> build_flows(const ScenarioFile& scenario,
                                   const net::Network& network) {
  std::vector<net::Flow> flows;
  flows.reserve(scenario.flows.size());
  for (const auto& spec : scenario.flows) {
    flows.push_back(
        net::Flow{net::Path::from_nodes(network, spec.nodes), spec.demand_mbps});
  }
  return flows;
}

}  // namespace mrwsn::io
