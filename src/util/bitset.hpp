#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

/// Word-level bitset primitives shared by the conflict-graph kernels.
///
/// The hot enumeration loops (Bron–Kerbosch, independent-set DFS, fixed-rate
/// clique extraction) all reduce to "intersect a candidate set with a
/// neighbourhood row and count/iterate the survivors". Storing every row as
/// packed 64-bit words turns those inner loops into word-wise AND + popcount
/// over a few cache lines instead of pointer-chasing vector<char> matrices.
namespace mrwsn::util {

using BitWord = std::uint64_t;

inline constexpr std::size_t kBitsPerWord = 64;

/// Number of 64-bit words needed for `bits` bits.
inline constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

inline void bits_set(BitWord* row, std::size_t i) {
  row[i / kBitsPerWord] |= BitWord{1} << (i % kBitsPerWord);
}

inline void bits_reset(BitWord* row, std::size_t i) {
  row[i / kBitsPerWord] &= ~(BitWord{1} << (i % kBitsPerWord));
}

inline bool bits_test(const BitWord* row, std::size_t i) {
  return (row[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
}

/// dst = a & b over `words` words.
inline void bits_and(BitWord* dst, const BitWord* a, const BitWord* b,
                     std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] = a[w] & b[w];
}

/// dst = a & ~b over `words` words.
inline void bits_and_not(BitWord* dst, const BitWord* a, const BitWord* b,
                         std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] = a[w] & ~b[w];
}

inline bool bits_none(const BitWord* row, std::size_t words) {
  BitWord acc = 0;
  for (std::size_t w = 0; w < words; ++w) acc |= row[w];
  return acc == 0;
}

inline std::size_t bits_count(const BitWord* row, std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w)
    count += static_cast<std::size_t>(std::popcount(row[w]));
  return count;
}

/// popcount(a & b) without materializing the intersection.
inline std::size_t bits_count_and(const BitWord* a, const BitWord* b,
                                  std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w)
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  return count;
}

/// Invoke fn(index) for every set bit, in ascending index order.
template <typename Fn>
inline void bits_for_each(const BitWord* row, std::size_t words, Fn&& fn) {
  for (std::size_t w = 0; w < words; ++w) {
    BitWord word = row[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      fn(w * kBitsPerWord + bit);
      word &= word - 1;
    }
  }
}

/// A dense rows × cols bit matrix with contiguous 64-bit-word rows. Row
/// pointers are stable for the lifetime of the matrix, so enumeration loops
/// can hold raw `const BitWord*` neighbourhood rows.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), words_(words_for_bits(cols)),
        bits_(rows * words_, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Words per row (the stride between consecutive rows).
  std::size_t words() const { return words_; }

  BitWord* row(std::size_t r) { return bits_.data() + r * words_; }
  const BitWord* row(std::size_t r) const { return bits_.data() + r * words_; }

  void set(std::size_t r, std::size_t c) { bits_set(row(r), c); }
  bool test(std::size_t r, std::size_t c) const { return bits_test(row(r), c); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_ = 0;
  std::vector<BitWord> bits_;
};

}  // namespace mrwsn::util
