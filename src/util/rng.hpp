#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mrwsn {

/// SplitMix64: tiny, fast generator used to seed Xoshiro256** and for
/// cheap hashing of seeds. Reference: Steele, Lea & Flood (2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the repository's deterministic pseudo-random generator.
/// All simulation randomness flows through this class so that every
/// experiment is exactly reproducible from a 64-bit seed.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6d7277736eULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  /// Uses rejection sampling so the distribution is exactly uniform.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derive an independent child generator (for per-subsystem streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace mrwsn
