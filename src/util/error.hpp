#pragma once

#include <stdexcept>
#include <string>

namespace mrwsn {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant is broken (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace detail

}  // namespace mrwsn

/// Check a caller-facing precondition; throws mrwsn::PreconditionError on failure.
#define MRWSN_REQUIRE(expr, msg)                                                 \
  do {                                                                           \
    if (!(expr)) ::mrwsn::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws mrwsn::InvariantError on failure.
#define MRWSN_ASSERT(expr, msg)                                                  \
  do {                                                                           \
    if (!(expr)) ::mrwsn::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
