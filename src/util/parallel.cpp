#include "util/parallel.hpp"

#include <cstdlib>

namespace mrwsn::util {

namespace {

/// Spin briefly before yielding: dispatch gaps between windows are usually
/// sub-microsecond, so most waits resolve within the spin budget.
template <typename Pred>
void spin_until(Pred&& ready) {
  for (int spins = 0; !ready(); ++spins) {
    if (spins >= 4096) std::this_thread::yield();
  }
}

}  // namespace

WorkerPool::WorkerPool(std::size_t threads)
    : size_(threads == 0 ? configured_threads() : threads) {
  threads_.reserve(size_ > 0 ? size_ - 1 : 0);
  for (std::size_t i = 1; i < size_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& th : threads_) th.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  if (size_ <= 1) {
    fn(0);
    return;
  }
  job_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);  // publishes job_
  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_) error_ = std::current_exception();
  }
  const std::size_t others = size_ - 1;
  spin_until([&] { return done_.load(std::memory_order_acquire) == others; });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void WorkerPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    spin_until(
        [&] { return epoch_.load(std::memory_order_acquire) != seen; });
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      (*job_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

std::size_t configured_threads() {
  if (const char* env = std::getenv("MRWSN_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace mrwsn::util
