#include "util/parallel.hpp"

#include <cstdlib>

namespace mrwsn::util {

std::size_t configured_threads() {
  if (const char* env = std::getenv("MRWSN_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace mrwsn::util
