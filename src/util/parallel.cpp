#include "util/parallel.hpp"

#include <cstdlib>

namespace mrwsn::util {

namespace {

/// Spin-wait budget before parking on a condition variable: pure spins
/// first (dispatch gaps between MAC windows are usually sub-microsecond,
/// so most waits resolve here), then a handful of yields for the oversized
/// pool case, then give up and let the caller block.
constexpr int kSpinsBeforeYield = 4096;
constexpr int kYieldsBeforePark = 64;

template <typename Pred>
bool spin_briefly(Pred&& ready) {
  for (int spins = 0; spins < kSpinsBeforeYield; ++spins)
    if (ready()) return true;
  for (int yields = 0; yields < kYieldsBeforePark; ++yields) {
    if (ready()) return true;
    std::this_thread::yield();
  }
  return ready();
}

}  // namespace

WorkerPool::WorkerPool(std::size_t threads)
    : size_(threads == 0 ? configured_threads() : threads) {
  threads_.reserve(size_ > 0 ? size_ - 1 : 0);
  for (std::size_t i = 1; i < size_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& th : threads_) th.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  if (size_ <= 1) {
    fn(0);
    return;
  }
  job_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  {
    // Advancing the epoch under wake_mu_ closes the race with a worker
    // that checked the epoch, exhausted its spin budget, and is about to
    // park: it either sees the new epoch inside wait()'s predicate or is
    // already waiting when notify_all lands.
    const std::lock_guard<std::mutex> lock(wake_mu_);
    epoch_.fetch_add(1, std::memory_order_release);  // publishes job_
  }
  wake_cv_.notify_all();
  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_) error_ = std::current_exception();
  }
  const std::size_t others = size_ - 1;
  const auto all_done = [&] {
    return done_.load(std::memory_order_acquire) == others;
  };
  if (!spin_briefly(all_done)) {
    std::unique_lock<std::mutex> lock(wake_mu_);
    done_cv_.wait(lock, all_done);
  }
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void WorkerPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    const auto job_ready = [&] {
      return epoch_.load(std::memory_order_acquire) != seen;
    };
    if (!spin_briefly(job_ready)) {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, job_ready);
    }
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      (*job_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
    }
    if (done_.fetch_add(1, std::memory_order_release) + 1 == size_ - 1) {
      // Last one out wakes a parked caller. The empty critical section
      // orders this increment against the caller's predicate check, so
      // the notify cannot slip between its check and its wait.
      { const std::lock_guard<std::mutex> lock(wake_mu_); }
      done_cv_.notify_one();
    }
  }
}

std::size_t configured_threads() {
  if (const char* env = std::getenv("MRWSN_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace mrwsn::util
