#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace mrwsn::util {

/// Persistent chunked vector with copy-on-write structure sharing — the
/// storage behind O(Δ) snapshot publication.
///
/// Elements live in fixed-size immutable-once-shared chunks held by
/// shared_ptr; the vector itself is just the spine of chunk pointers plus
/// a parallel "owned" flag per chunk. share() hands out a cheap aliasing
/// copy (spine pointer copies, no element copies) and marks every chunk
/// shared; any later mutation of a shared chunk first clones that one
/// chunk (copy-on-write), so two epochs that differ in one element share
/// every other chunk by pointer identity.
///
/// Concurrency contract (matches the admission engine's snapshot scheme):
/// all mutation — including share(), which flips the owned flags — happens
/// on the writer thread under its commit lock. Readers only ever touch
/// aliasing copies obtained from a published snapshot, whose chunks the
/// writer never mutates again: ownership is tracked by the writer-side
/// flags alone, never by shared_ptr::use_count() (whose relaxed loads
/// cannot order against a reader's release of its snapshot). Publication
/// hands the aliasing copy to readers through the usual mutex, which
/// provides the happens-before edge for the chunk contents.
template <typename T, std::size_t kChunk = 128>
class SegVector {
  static_assert(kChunk > 0, "chunk capacity must be positive");
  using Chunk = std::vector<T>;
  using ChunkPtr = std::shared_ptr<Chunk>;

 public:
  SegVector() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    return (*chunks_[i / kChunk])[i % kChunk];
  }

  /// Mutable access; clones the containing chunk first when it is shared
  /// with a previously published epoch.
  T& mutate(std::size_t i) {
    MRWSN_REQUIRE(i < size_, "SegVector::mutate out of range");
    return writable_chunk(i / kChunk)[i % kChunk];
  }

  void set(std::size_t i, T value) { mutate(i) = std::move(value); }

  void push_back(T value) {
    const std::size_t c = size_ / kChunk;
    if (c == chunks_.size()) {
      auto chunk = std::make_shared<Chunk>();
      chunk->reserve(kChunk);
      chunks_.push_back(std::move(chunk));
      owned_.push_back(1);
    }
    writable_chunk(c).push_back(std::move(value));
    ++size_;
  }

  /// Grow to `n` elements, appending copies of `value` (never shrinks; the
  /// engine's link-indexed arrays are append-only under churn).
  void resize(std::size_t n, const T& value = T()) {
    MRWSN_REQUIRE(n >= size_, "SegVector::resize never shrinks");
    while (size_ < n) push_back(value);
  }

  /// Drop all elements. Chunks still referenced by published epochs live
  /// on through their own shared_ptrs.
  void clear() {
    chunks_.clear();
    owned_.clear();
    size_ = 0;
  }

  /// Aliasing copy for publication: O(chunks) pointer copies. Marks every
  /// chunk of *this* shared, so subsequent mutations copy-on-write and the
  /// returned epoch stays immutable forever.
  SegVector share() {
    owned_.assign(owned_.size(), 0);
    SegVector copy;
    copy.chunks_ = chunks_;
    copy.owned_.assign(chunks_.size(), 0);
    copy.size_ = size_;
    return copy;
  }

  /// Chunk-wise traversal — the iteration shape for O(n) scans (one
  /// indirection per chunk instead of two per element).
  template <typename F>
  void for_each(F&& fn) const {
    std::size_t i = 0;
    for (const ChunkPtr& chunk : chunks_) {
      for (const T& value : *chunk) {
        fn(i++, value);
        if (i == size_) return;
      }
    }
  }

  /// Identity of the chunk covering element index `i` — lets tests assert
  /// that untouched segments of two epochs alias the same storage.
  const void* chunk_identity(std::size_t i) const {
    return chunks_[i / kChunk].get();
  }
  static constexpr std::size_t chunk_capacity() { return kChunk; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const SegVector* owner, std::size_t i)
        : owner_(owner), i_(i) {}
    reference operator*() const { return (*owner_)[i_]; }
    pointer operator->() const { return &(*owner_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++i_;
      return out;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const SegVector* owner_ = nullptr;
    std::size_t i_ = 0;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  Chunk& writable_chunk(std::size_t c) {
    if (!owned_[c]) {
      chunks_[c] = std::make_shared<Chunk>(*chunks_[c]);
      owned_[c] = 1;
    }
    return *chunks_[c];
  }

  std::vector<ChunkPtr> chunks_;
  std::vector<char> owned_;  // 1 = exclusively ours, safe to mutate in place
  std::size_t size_ = 0;
};

}  // namespace mrwsn::util
