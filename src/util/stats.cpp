#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mrwsn::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double rms_error(std::span<const double> a, std::span<const double> b) {
  MRWSN_REQUIRE(a.size() == b.size(), "rms_error needs equal-length ranges");
  if (a.empty()) return 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) ss += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(ss / static_cast<double>(a.size()));
}

double mean_bias(std::span<const double> a, std::span<const double> b) {
  MRWSN_REQUIRE(a.size() == b.size(), "mean_bias needs equal-length ranges");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] - b[i];
  return sum / static_cast<double>(a.size());
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  MRWSN_REQUIRE(a.size() == b.size(), "max_abs_error needs equal-length ranges");
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

}  // namespace mrwsn::stats
