#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace mrwsn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MRWSN_REQUIRE(!header_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MRWSN_REQUIRE(row.size() == header_.size(),
                "row width must match the header width");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };

  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << '|' << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace mrwsn
