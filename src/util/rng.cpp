#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mrwsn {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MRWSN_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  MRWSN_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t range = hi - lo;
  if (range == max()) return next_u64();
  const std::uint64_t bound = range + 1;
  // Rejection sampling over the largest multiple of `bound` that fits.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + draw % bound;
}

double Rng::exponential(double mean) {
  MRWSN_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf, so nudge into (0, 1).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace mrwsn
