#pragma once

#include <span>

namespace mrwsn::stats {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double stdev(std::span<const double> xs);

/// Root-mean-square of (a[i] - b[i]); the ranges must have equal length.
double rms_error(std::span<const double> a, std::span<const double> b);

/// Mean of (a[i] - b[i]); positive means `a` over-estimates `b`.
double mean_bias(std::span<const double> a, std::span<const double> b);

/// Largest |a[i] - b[i]|; 0 for empty ranges.
double max_abs_error(std::span<const double> a, std::span<const double> b);

}  // namespace mrwsn::stats
