#pragma once

#include <cmath>

/// Unit conventions used throughout the library:
///  - power: watts (linear) unless a name says dBm/dB
///  - rate: Mbps (the paper's unit)
///  - distance: metres
///  - time: seconds; schedule time shares are dimensionless in [0, 1]
namespace mrwsn::units {

/// Convert a linear power ratio to decibels.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Convert watts to dBm.
inline double watt_to_dbm(double watt) { return 10.0 * std::log10(watt * 1e3); }

/// Convert dBm to watts.
inline double dbm_to_watt(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

}  // namespace mrwsn::units
