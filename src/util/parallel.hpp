#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

/// MRWSN_THREADS-aware fan-out shared by the Eq. 9 rate-vector sweep
/// (core/bounds.cpp) and the column-generation pricing oracles
/// (core/independent_set.cpp). Callers write results into indexed slots and
/// reduce serially, so any thread count produces identical results.
namespace mrwsn::util {

/// Worker count for indexed fan-outs: MRWSN_THREADS when set (>= 1;
/// 1 = deterministic serial execution), else the hardware concurrency.
std::size_t configured_threads();

/// Run fn(i) for every i in [0, count) across configured_threads() workers
/// pulling from a shared atomic counter. The first exception thrown by any
/// worker is rethrown on the calling thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn) {
  const std::size_t threads = std::min(configured_threads(), count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mrwsn::util
