#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// MRWSN_THREADS-aware fan-out shared by the Eq. 9 rate-vector sweep
/// (core/bounds.cpp) and the column-generation pricing oracles
/// (core/independent_set.cpp). Callers write results into indexed slots and
/// reduce serially, so any thread count produces identical results.
namespace mrwsn::util {

/// Worker count for indexed fan-outs: MRWSN_THREADS when set (>= 1;
/// 1 = deterministic serial execution), else the hardware concurrency.
std::size_t configured_threads();

/// Run fn(i) for every i in [0, count) across configured_threads() workers
/// pulling from a shared atomic counter. The first exception thrown by any
/// worker is rethrown on the calling thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn) {
  const std::size_t threads = std::min(configured_threads(), count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

/// A persistent pool of spinning workers for fine-grained, repeated
/// fan-outs. util::parallel_for spawns and joins std::threads per call
/// (fine for the colgen oracles, whose tasks run for milliseconds); the
/// sharded MAC simulator (mac/parallel_sim.*) instead crosses a barrier
/// every lookahead window — tens of thousands of times per simulated
/// second — so thread spawn/join would dwarf the event work. WorkerPool
/// keeps its workers alive between run() calls and synchronizes them with
/// an epoch counter. Waiters spin on it for a bounded budget — dispatch
/// gaps between MAC windows are usually sub-microsecond, so the fast path
/// stays a few microseconds per round trip — and then park on a condition
/// variable, so an idle pool (a serve session between requests, a bench
/// harness between traces) costs no CPU instead of burning cores.
///
/// run(fn) invokes fn(worker) once per worker, including worker 0 on the
/// calling thread. Workers partition their work statically from the worker
/// index (see member `size()`), so a run's side effects are deterministic
/// for any pool size as long as the per-worker work is.
class WorkerPool {
 public:
  /// `threads` total workers (including the caller); 0 means
  /// configured_threads().
  explicit WorkerPool(std::size_t threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return size_; }

  /// Run fn(worker) for worker in [0, size()); fn(0) runs on the calling
  /// thread. Returns when every worker finished. The first exception
  /// thrown by any worker is rethrown here.
  void run(const std::function<void(std::size_t)>& fn);

  /// Static contiguous block [begin, end) of `count` items for `worker`.
  std::pair<std::size_t, std::size_t> block(std::size_t worker,
                                            std::size_t count) const {
    const std::size_t base = count / size_, extra = count % size_;
    const std::size_t begin = worker * base + std::min(worker, extra);
    return {begin, begin + base + (worker < extra ? 1 : 0)};
  }

 private:
  void worker_loop(std::size_t index);

  std::size_t size_ = 1;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::mutex error_mu_;
  std::exception_ptr error_;
  // Parking lot for waits that outlive the spin budget. epoch_ advances
  // while holding wake_mu_, which closes the checked-then-slept race.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;   ///< workers waiting for the next job
  std::condition_variable done_cv_;   ///< caller waiting for the last worker
};

}  // namespace mrwsn::util
