#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mrwsn {

/// Minimal ASCII table writer used by the benchmark binaries to print the
/// rows/series corresponding to the paper's tables and figures.
///
/// Usage:
///   Table t({"flow", "hop count", "e2eTD", "average-e2eD"});
///   t.add_row({"1", "4.1", "5.0", "6.2"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row. The row must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Format a double with the given precision, trimming trailing zeros.
  static std::string num(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrwsn
