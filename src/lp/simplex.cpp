#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mrwsn::lp {

VarId Problem::add_variable(double objective_coeff, std::string name) {
  objective_coeffs_.push_back(objective_coeff);
  if (name.empty()) name = "x" + std::to_string(objective_coeffs_.size() - 1);
  names_.push_back(std::move(name));
  for (auto& row : rows_) row.coeffs.push_back(0.0);
  return static_cast<VarId>(objective_coeffs_.size() - 1);
}

void Problem::add_constraint(const std::vector<std::pair<VarId, double>>& terms,
                             Sense sense, double rhs) {
  Row row;
  row.coeffs.assign(num_variables(), 0.0);
  for (const auto& [var, coeff] : terms) {
    MRWSN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < num_variables(),
                  "constraint references an unknown variable");
    row.coeffs[static_cast<std::size_t>(var)] += coeff;
  }
  row.sense = sense;
  row.rhs = rhs;
  rows_.push_back(std::move(row));
}

namespace {

/// Dense two-phase tableau simplex. Column layout:
///   [0, n)            original variables
///   [n, n+s)          slack/surplus variables (one per inequality row)
///   [n+s, n+s+m)      artificial variables (one per row)
/// The last tableau column is the right-hand side.
///
/// The tableau lives in ONE contiguous row-major buffer (stride cols_+1):
/// every pivot walks the pivot row and each updated row sequentially, so
/// the hundreds of LP solves behind Eq. 6 / Eq. 9 stream through cache
/// lines instead of chasing per-row heap allocations.
class Tableau {
 public:
  Tableau(const Problem& p, double eps) : eps_(eps) {
    const std::size_t n = p.num_variables();
    const std::size_t m = p.num_constraints();

    // Count slack/surplus columns, and which rows need an artificial: a
    // row whose (sign-normalized) slack enters with +1 can start basic on
    // its slack — only >=-like and equality rows need artificials. This
    // keeps phase 1 tiny for the mostly-<= problems this library builds.
    std::size_t num_slack = 0;
    std::size_t num_art = 0;
    std::vector<double> signs(m, 1.0);
    std::vector<char> needs_art(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      signs[i] = row.rhs < 0.0 ? -1.0 : 1.0;
      if (row.sense != Sense::kEqual) ++num_slack;
      const bool slack_is_basic =
          (row.sense == Sense::kLessEqual && signs[i] > 0.0) ||
          (row.sense == Sense::kGreaterEqual && signs[i] < 0.0);
      needs_art[i] = slack_is_basic ? 0 : 1;
      if (needs_art[i]) ++num_art;
    }

    n_ = n;
    slack_begin_ = n;
    art_begin_ = n + num_slack;
    cols_ = n + num_slack + num_art;
    rows_ = m;
    stride_ = cols_ + 1;

    a_.assign(rows_ * stride_, 0.0);
    basis_.assign(rows_, 0);
    dual_col_.assign(rows_, 0);
    row_sign_.reserve(rows_);
    row_slack_col_.reserve(rows_);
    slack_row_.assign(num_slack, 0);

    std::size_t slack = slack_begin_;
    std::size_t art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& prow = p.rows()[i];
      const double sign = signs[i];
      double* arow = row(i);
      for (std::size_t j = 0; j < n; ++j) arow[j] = sign * prow.coeffs[j];
      arow[cols_] = sign * prow.rhs;
      std::size_t slack_col = cols_;  // sentinel: no slack (equality row)
      if (prow.sense == Sense::kLessEqual) {
        slack_col = slack++;
        arow[slack_col] = sign * 1.0;
      } else if (prow.sense == Sense::kGreaterEqual) {
        slack_col = slack++;
        arow[slack_col] = sign * -1.0;
      }
      row_slack_col_.push_back(slack_col);
      if (slack_col != cols_) slack_row_[slack_col - slack_begin_] = i;
      if (needs_art[i]) {
        // Identity column for the row; doubles as the dual probe.
        const std::size_t art_col = art++;
        arow[art_col] = 1.0;
        basis_[i] = art_col;
        dual_col_[i] = art_col;
      } else {
        // Slack coefficient is +1 here, so it is both a valid starting
        // basis column and an identity column for dual extraction.
        basis_[i] = slack_col;
        dual_col_[i] = slack_col;
      }
      row_sign_.push_back(sign);
    }
    in_basis_.assign(cols_, 0);
    for (std::size_t b : basis_) in_basis_[b] = 1;

    // Objective in "maximize" orientation.
    obj_.assign(cols_, 0.0);
    const double obj_sign = p.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) obj_[j] = obj_sign * p.objective_coeffs()[j];
    obj_sign_ = obj_sign;
  }

  Solution run(std::size_t max_pivots) {
    budget_ = max_pivots;
    // --- Phase 1: minimize the sum of artificials (maximize its negation).
    // Skipped entirely when no row needed one (the all-slack basis is
    // already feasible).
    if (art_begin_ < cols_) {
      std::vector<double> phase1(cols_, 0.0);
      for (std::size_t j = art_begin_; j < cols_; ++j) phase1[j] = -1.0;
      const LoopResult r = pivot_loop(phase1, /*allow_artificials=*/true);
      if (r == LoopResult::kLimit) return limit_solution();
      MRWSN_ASSERT(r == LoopResult::kOptimal,
                   "phase-1 objective cannot be unbounded");
      double phase1_value = 0.0;
      for (std::size_t i = 0; i < rows_; ++i)
        if (basis_[i] >= art_begin_) phase1_value -= row(i)[cols_];
      if (phase1_value < -eps_) return Solution{};
      drive_out_artificials();
    }
    return phase2();
  }

  /// Pivot into `warm` and run phase 2 from it, skipping phase 1. Returns
  /// false when the basis does not apply to this problem — wrong size,
  /// unknown entries, singular basis matrix, or a primal-infeasible
  /// starting point. The tableau is garbage afterwards; the caller must
  /// rebuild and run cold.
  bool run_warm(const Basis& warm, std::size_t max_pivots, Solution* out) {
    budget_ = max_pivots;
    if (warm.size() != rows_) return false;
    std::vector<std::size_t> target(rows_, cols_);
    std::vector<char> used(cols_, 0);
    for (std::size_t k = 0; k < rows_; ++k) {
      const BasisEntry& entry = warm[k];
      std::size_t c = cols_;
      if (entry.kind == BasisEntry::Kind::kStructural) {
        if (entry.index < 0 || static_cast<std::size_t>(entry.index) >= n_)
          return false;
        c = static_cast<std::size_t>(entry.index);
      } else {
        if (entry.index < 0 || static_cast<std::size_t>(entry.index) >= rows_)
          return false;
        c = row_slack_col_[static_cast<std::size_t>(entry.index)];
        if (c == cols_) return false;  // equality row: no slack to be basic
      }
      if (used[c]) return false;
      used[c] = 1;
      target[k] = c;
    }

    // Gaussian pivot-in: per target column, the largest-magnitude pivot
    // among rows not yet claimed. A near-zero best pivot means the basis
    // matrix is singular for this problem. These <= m deterministic pivots
    // do not count against the budget.
    std::vector<char> row_done(rows_, 0);
    for (std::size_t k = 0; k < rows_; ++k) {
      const std::size_t c = target[k];
      std::size_t best_row = rows_;
      double best_abs = 1e-7;
      const double* col = a_.data() + c;
      for (std::size_t i = 0; i < rows_; ++i, col += stride_) {
        if (!row_done[i] && std::abs(*col) > best_abs) {
          best_abs = std::abs(*col);
          best_row = i;
        }
      }
      if (best_row == rows_) return false;
      pivot(best_row, c);
      row_done[best_row] = 1;
    }

    // The warm basis must be primal feasible here (it always is when the
    // problem only gained columns since the basis was optimal). Tiny
    // negative rhs from re-pivoting round-off is clamped; anything larger
    // means a genuinely different problem.
    for (std::size_t i = 0; i < rows_; ++i)
      if (row(i)[cols_] < -1e-7) return false;
    for (std::size_t i = 0; i < rows_; ++i)
      if (row(i)[cols_] < 0.0) row(i)[cols_] = 0.0;
    *out = phase2();
    return true;
  }

 private:
  enum class LoopResult { kOptimal, kUnbounded, kLimit };

  double* row(std::size_t i) { return a_.data() + i * stride_; }
  const double* row(std::size_t i) const { return a_.data() + i * stride_; }

  static Solution limit_solution() {
    Solution solution;
    solution.status = Status::kIterationLimit;
    return solution;
  }

  /// Phase 2: the real objective; artificials may no longer enter.
  Solution phase2() {
    Solution solution;
    const LoopResult r = pivot_loop(obj_, /*allow_artificials=*/false);
    if (r == LoopResult::kLimit) return limit_solution();
    if (r == LoopResult::kUnbounded) {
      solution.status = Status::kUnbounded;
      return solution;
    }

    solution.status = Status::kOptimal;
    solution.values.assign(n_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < n_) solution.values[basis_[i]] = row(i)[cols_];
    }
    double obj_value = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj_value += obj_[j] * solution.values[j];
    solution.objective = obj_sign_ * obj_value;

    // Duals from each row's identity-like column (its artificial if one
    // was created, else its +1 slack): that column's phase-2 reduced cost
    // is 0 - y_i. Undo the row sign normalization and the min/max flip.
    solution.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
      solution.duals[i] = obj_sign_ * row_sign_[i] * -red_[dual_col_[i]];

    // Export the basis in the problem-level representation for warm
    // starts. A basic artificial (redundant row) has no such form; the
    // basis is then reported empty (not reusable).
    solution.basis.reserve(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::size_t b = basis_[i];
      if (b < n_) {
        solution.basis.push_back(
            {BasisEntry::Kind::kStructural, static_cast<int>(b)});
      } else if (b < art_begin_) {
        solution.basis.push_back(
            {BasisEntry::Kind::kSlack,
             static_cast<int>(slack_row_[b - slack_begin_])});
      } else {
        solution.basis.clear();
        break;
      }
    }
    return solution;
  }

  /// Core simplex loop.
  LoopResult pivot_loop(const std::vector<double>& c, bool allow_artificials) {
    // Maintain the reduced-cost row incrementally (full-tableau simplex):
    // red_[j] = c_j - c_B' * B^{-1} A_j, updated on every pivot. Built
    // row-by-row so the initialization streams over the contiguous buffer.
    red_.assign(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(cols_));
    for (std::size_t i = 0; i < rows_; ++i) {
      const double cb = c[basis_[i]];
      if (cb == 0.0) continue;
      const double* arow = row(i);
      for (std::size_t j = 0; j < cols_; ++j) red_[j] -= cb * arow[j];
    }

    for (std::size_t iter = 0;; ++iter) {
      // Dantzig's rule (steepest reduced cost) for speed; after a long
      // stall switch permanently to Bland's rule, whose anti-cycling
      // guarantee ensures termination on degenerate problems.
      const bool bland = iter >= kDantzigIters;
      std::size_t entering = cols_;
      double best_reduced = eps_;
      const std::size_t limit = allow_artificials ? cols_ : art_begin_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (red_[j] > best_reduced && !is_basic(j)) {
          entering = j;
          if (bland) break;  // first (lowest-index) improving column
          best_reduced = red_[j];
        }
      }
      if (entering == cols_) return LoopResult::kOptimal;

      // Ratio test; Bland tie-break on the smallest basic variable index.
      // One strided pass over the pivot column.
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      const double* col = a_.data() + entering;
      for (std::size_t i = 0; i < rows_; ++i, col += stride_) {
        if (*col > eps_) {
          const double ratio = row(i)[cols_] / *col;
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ &&
               (leaving == rows_ || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == rows_) return LoopResult::kUnbounded;

      if (budget_ == 0) return LoopResult::kLimit;
      --budget_;
      pivot(leaving, entering);
    }
  }

  bool is_basic(std::size_t col) const { return in_basis_[col] != 0; }

  void pivot(std::size_t prow_idx, std::size_t col) {
    // The pivot row is normalized in place, then every other row gets one
    // branch-free fused update pass; __restrict lets the compiler
    // vectorize the row updates (prow never aliases the updated row).
    double* const __restrict prow = row(prow_idx);
    const double p = prow[col];
    for (std::size_t j = 0; j <= cols_; ++j) prow[j] /= p;
    double* arow = a_.data();
    for (std::size_t i = 0; i < rows_; ++i, arow += stride_) {
      if (i == prow_idx) continue;
      const double factor = arow[col];
      if (factor == 0.0) continue;
      double* const __restrict dst = arow;
      for (std::size_t j = 0; j <= cols_; ++j) dst[j] -= factor * prow[j];
    }
    if (!red_.empty()) {
      const double factor = red_[col];
      if (factor != 0.0) {
        double* const __restrict red = red_.data();
        for (std::size_t j = 0; j < cols_; ++j) red[j] -= factor * prow[j];
      }
    }
    in_basis_[basis_[prow_idx]] = 0;
    in_basis_[col] = 1;
    basis_[prow_idx] = col;
  }

  /// After phase 1, pivot any artificial still basic (at level ~0) out of
  /// the basis; if its row has no eligible pivot the row is redundant and
  /// the artificial stays basic at zero (it is barred from re-entering).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < art_begin_) continue;
      MRWSN_ASSERT(std::abs(row(i)[cols_]) <= 1e-6,
                   "basic artificial with nonzero value after feasible phase 1");
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(row(i)[j]) > eps_ && !is_basic(j)) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  static constexpr std::size_t kDantzigIters = 20000;

  double eps_;
  double obj_sign_ = 1.0;
  std::size_t n_ = 0;           // original variables
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t cols_ = 0;        // total structural columns (excl. rhs)
  std::size_t rows_ = 0;
  std::size_t stride_ = 0;      // cols_ + 1 (rhs lives in the last column)
  std::size_t budget_ = 0;      // remaining pivots before kIterationLimit
  std::vector<double> a_;       // contiguous rows_ x stride_ tableau
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;  // membership flags mirroring basis_
  std::vector<double> row_sign_;  // +1/-1 rhs normalization per row
  std::vector<std::size_t> dual_col_;  // identity-like column per row
  std::vector<std::size_t> row_slack_col_;  // per row: slack column or cols_
  std::vector<std::size_t> slack_row_;      // per slack column: its row
  std::vector<double> obj_;  // maximize orientation over original columns
  std::vector<double> red_;  // reduced-cost row maintained by pivot()
};

/// The pre-flattening vector<vector<double>> tableau, retained verbatim as
/// the reference implementation for the parity suite and the before/after
/// microbenchmarks (see solve_reference).
class ReferenceTableau {
 public:
  ReferenceTableau(const Problem& p, double eps) : eps_(eps) {
    const std::size_t n = p.num_variables();
    const std::size_t m = p.num_constraints();

    std::size_t num_slack = 0;
    std::size_t num_art = 0;
    std::vector<double> signs(m, 1.0);
    std::vector<char> needs_art(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      signs[i] = row.rhs < 0.0 ? -1.0 : 1.0;
      if (row.sense != Sense::kEqual) ++num_slack;
      const bool slack_is_basic =
          (row.sense == Sense::kLessEqual && signs[i] > 0.0) ||
          (row.sense == Sense::kGreaterEqual && signs[i] < 0.0);
      needs_art[i] = slack_is_basic ? 0 : 1;
      if (needs_art[i]) ++num_art;
    }

    n_ = n;
    art_begin_ = n + num_slack;
    cols_ = n + num_slack + num_art;
    rows_ = m;

    a_.assign(rows_, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(rows_, 0);
    dual_col_.assign(rows_, 0);

    std::size_t slack = n;
    std::size_t art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      const double sign = signs[i];
      for (std::size_t j = 0; j < n; ++j) a_[i][j] = sign * row.coeffs[j];
      a_[i][cols_] = sign * row.rhs;
      std::size_t slack_col = cols_;
      if (row.sense == Sense::kLessEqual) {
        slack_col = slack++;
        a_[i][slack_col] = sign * 1.0;
      } else if (row.sense == Sense::kGreaterEqual) {
        slack_col = slack++;
        a_[i][slack_col] = sign * -1.0;
      }
      if (needs_art[i]) {
        const std::size_t art_col = art++;
        a_[i][art_col] = 1.0;
        basis_[i] = art_col;
        dual_col_[i] = art_col;
      } else {
        basis_[i] = slack_col;
        dual_col_[i] = slack_col;
      }
      row_sign_.push_back(sign);
    }
    in_basis_.assign(cols_, 0);
    for (std::size_t b : basis_) in_basis_[b] = 1;

    obj_.assign(cols_, 0.0);
    const double obj_sign = p.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) obj_[j] = obj_sign * p.objective_coeffs()[j];
    obj_sign_ = obj_sign;
  }

  Solution run() {
    if (art_begin_ < cols_) {
      std::vector<double> phase1(cols_, 0.0);
      for (std::size_t j = art_begin_; j < cols_; ++j) phase1[j] = -1.0;
      const double phase1_value = optimize(phase1, /*allow_artificials=*/true);
      if (phase1_value < -eps_) return Solution{};
      drive_out_artificials();
    }

    Solution solution;
    if (!pivot_loop(obj_, /*allow_artificials=*/false)) {
      solution.status = Status::kUnbounded;
      return solution;
    }

    solution.status = Status::kOptimal;
    solution.values.assign(n_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < n_) solution.values[basis_[i]] = a_[i][cols_];
    }
    double obj_value = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj_value += obj_[j] * solution.values[j];
    solution.objective = obj_sign_ * obj_value;

    solution.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
      solution.duals[i] = obj_sign_ * row_sign_[i] * -red_[dual_col_[i]];
    return solution;
  }

 private:
  double optimize(const std::vector<double>& c, bool allow_artificials) {
    const bool unbounded = !pivot_loop(c, allow_artificials);
    MRWSN_ASSERT(!unbounded, "phase-1 objective cannot be unbounded");
    double value = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < c.size()) value += c[basis_[i]] * a_[i][cols_];
    }
    return value;
  }

  bool pivot_loop(const std::vector<double>& c, bool allow_artificials) {
    red_.assign(cols_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) {
      double reduced = c[j];
      for (std::size_t i = 0; i < rows_; ++i) {
        const double cb = c[basis_[i]];
        if (cb != 0.0) reduced -= cb * a_[i][j];
      }
      red_[j] = reduced;
    }

    for (std::size_t iter = 0; iter < kMaxIters; ++iter) {
      const bool bland = iter >= kDantzigIters;
      std::size_t entering = cols_;
      double best_reduced = eps_;
      const std::size_t limit = allow_artificials ? cols_ : art_begin_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (red_[j] > best_reduced && !is_basic(j)) {
          entering = j;
          if (bland) break;
          best_reduced = red_[j];
        }
      }
      if (entering == cols_) return true;

      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < rows_; ++i) {
        if (a_[i][entering] > eps_) {
          const double ratio = a_[i][cols_] / a_[i][entering];
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ &&
               (leaving == rows_ || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == rows_) return false;

      pivot(leaving, entering);
    }
    throw InvariantError("simplex exceeded the iteration limit (cycling?)");
  }

  bool is_basic(std::size_t col) const { return in_basis_[col] != 0; }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    for (double& v : a_[row]) v /= p;
    for (std::size_t i = 0; i < rows_; ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) a_[i][j] -= factor * a_[row][j];
    }
    if (!red_.empty()) {
      const double factor = red_[col];
      if (factor != 0.0)
        for (std::size_t j = 0; j < cols_; ++j) red_[j] -= factor * a_[row][j];
    }
    in_basis_[basis_[row]] = 0;
    in_basis_[col] = 1;
    basis_[row] = col;
  }

  void drive_out_artificials() {
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < art_begin_) continue;
      MRWSN_ASSERT(std::abs(a_[i][cols_]) <= 1e-6,
                   "basic artificial with nonzero value after feasible phase 1");
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(a_[i][j]) > eps_ && !is_basic(j)) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  static constexpr std::size_t kDantzigIters = 20000;
  static constexpr std::size_t kMaxIters = 400000;

  double eps_;
  double obj_sign_ = 1.0;
  std::size_t n_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;
  std::vector<double> row_sign_;
  std::vector<std::size_t> dual_col_;
  std::vector<double> obj_;
  std::vector<double> red_;
};

Solution solve_trivial(const Problem& problem, double eps) {
  // Degenerate but well-defined: feasible iff every constraint already
  // holds with an all-zero left-hand side.
  Solution s;
  s.status = Status::kOptimal;
  s.duals.assign(problem.num_constraints(), 0.0);
  for (const auto& row : problem.rows()) {
    const bool ok = (row.sense == Sense::kLessEqual && 0.0 <= row.rhs + eps) ||
                    (row.sense == Sense::kGreaterEqual && 0.0 >= row.rhs - eps) ||
                    (row.sense == Sense::kEqual && std::abs(row.rhs) <= eps);
    if (!ok) {
      s.status = Status::kInfeasible;
      break;
    }
  }
  return s;
}

}  // namespace

Solution solve(const Problem& problem, double eps) {
  SolveOptions options;
  options.eps = eps;
  return solve(problem, options);
}

Solution solve(const Problem& problem, const SolveOptions& options) {
  MRWSN_REQUIRE(options.eps > 0.0, "tolerance must be positive");
  if (problem.num_variables() == 0) return solve_trivial(problem, options.eps);
  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    // Warm path: pivot straight into the previous basis and run phase 2.
    // Any failure to apply it falls through to a fresh cold tableau (the
    // warm attempt mutates its tableau, so it cannot be reused).
    Tableau tableau(problem, options.eps);
    Solution solution;
    if (tableau.run_warm(*options.warm_start, options.max_pivots, &solution))
      return solution;
  }
  Tableau tableau(problem, options.eps);
  return tableau.run(options.max_pivots);
}

Solution solve_reference(const Problem& problem, double eps) {
  MRWSN_REQUIRE(eps > 0.0, "tolerance must be positive");
  if (problem.num_variables() == 0) return solve_trivial(problem, eps);
  ReferenceTableau tableau(problem, eps);
  return tableau.run();
}

}  // namespace mrwsn::lp
