#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace mrwsn::lp {

VarId Problem::add_variable(double objective_coeff, std::string name) {
  MRWSN_REQUIRE(std::isfinite(objective_coeff),
                "objective coefficient must be finite (got NaN or infinity)");
  objective_coeffs_.push_back(objective_coeff);
  // Unnamed variables get their "x<id>" name synthesized on demand in
  // variable_name(); not materializing it here keeps the column-generation
  // hot path (thousands of anonymous λ columns) free of string traffic.
  names_.push_back(std::move(name));
  // Rows are sparse: a variable absent from a row has coefficient zero, so
  // appending a column (the column-generation hot path) is O(1).
  return static_cast<VarId>(objective_coeffs_.size() - 1);
}

void Problem::add_constraint(const std::vector<std::pair<VarId, double>>& terms,
                             Sense sense, double rhs) {
  Row row;
  row.terms.reserve(terms.size());
  for (const auto& [var, coeff] : terms) {
    MRWSN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < num_variables(),
                  "constraint references an unknown variable");
    MRWSN_REQUIRE(std::isfinite(coeff),
                  "constraint coefficient for variable '" +
                      variable_name(var) +
                      "' must be finite (got NaN or infinity)");
    row.terms.emplace_back(var, coeff);
  }
  MRWSN_REQUIRE(std::isfinite(rhs),
                "constraint right-hand side must be finite (got NaN or "
                "infinity)");
  // Canonical sparse form: sorted by variable, duplicates accumulated,
  // exact zeros dropped. Column-generation masters build their rows in
  // ascending variable order already; one linear scan detects that and
  // skips the sort.
  if (!std::is_sorted(
          row.terms.begin(), row.terms.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; }))
    std::sort(row.terms.begin(), row.terms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < row.terms.size();) {
    const VarId var = row.terms[i].first;
    double acc = 0.0;
    for (; i < row.terms.size() && row.terms[i].first == var; ++i)
      acc += row.terms[i].second;
    if (acc != 0.0) row.terms[out++] = {var, acc};
  }
  row.terms.resize(out);
  row.sense = sense;
  row.rhs = rhs;
  rows_.push_back(std::move(row));
}

void Problem::append_term(std::size_t row, VarId var, double coeff) {
  MRWSN_REQUIRE(row < rows_.size(), "append_term references an unknown row");
  MRWSN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < num_variables(),
                "append_term references an unknown variable");
  MRWSN_REQUIRE(std::isfinite(coeff),
                "constraint coefficient for variable '" + variable_name(var) +
                    "' must be finite (got NaN or infinity)");
  std::vector<std::pair<VarId, double>>& terms = rows_[row].terms;
  MRWSN_REQUIRE(terms.empty() || terms.back().first < var,
                "append_term must extend the row with a newer variable");
  if (coeff != 0.0) terms.emplace_back(var, coeff);
}

void Problem::set_rhs(std::size_t row, double rhs) {
  MRWSN_REQUIRE(row < rows_.size(), "set_rhs references an unknown row");
  MRWSN_REQUIRE(std::isfinite(rhs),
                "constraint right-hand side must be finite (got NaN or "
                "infinity)");
  rows_[row].rhs = rhs;
}

void Problem::set_term(std::size_t row, VarId var, double coeff) {
  MRWSN_REQUIRE(row < rows_.size(), "set_term references an unknown row");
  MRWSN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < num_variables(),
                "set_term references an unknown variable");
  MRWSN_REQUIRE(std::isfinite(coeff),
                "constraint coefficient for variable '" + variable_name(var) +
                    "' must be finite (got NaN or infinity)");
  std::vector<std::pair<VarId, double>>& terms = rows_[row].terms;
  const auto it = std::lower_bound(
      terms.begin(), terms.end(), var,
      [](const std::pair<VarId, double>& t, VarId v) { return t.first < v; });
  if (it != terms.end() && it->first == var) {
    if (coeff != 0.0)
      it->second = coeff;
    else
      terms.erase(it);
  } else if (coeff != 0.0) {
    terms.insert(it, {var, coeff});
  }
}

void Problem::remove_term(std::size_t row, VarId var) {
  MRWSN_REQUIRE(row < rows_.size(), "remove_term references an unknown row");
  MRWSN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < num_variables(),
                "remove_term references an unknown variable");
  set_term(row, var, 0.0);
}

void Problem::set_objective_coeff(VarId var, double objective_coeff) {
  MRWSN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < num_variables(),
                "set_objective_coeff references an unknown variable");
  MRWSN_REQUIRE(std::isfinite(objective_coeff),
                "objective coefficient must be finite (got NaN or infinity)");
  objective_coeffs_[static_cast<std::size_t>(var)] = objective_coeff;
}

namespace {

/// Dense two-phase tableau simplex. Column layout:
///   [0, n)            original variables
///   [n, n+s)          slack/surplus variables (one per inequality row)
///   [n+s, n+s+m)      artificial variables (one per row)
/// The last tableau column is the right-hand side.
///
/// The tableau lives in ONE contiguous row-major buffer (stride cols_+1):
/// every pivot walks the pivot row and each updated row sequentially, so
/// the hundreds of LP solves behind Eq. 6 / Eq. 9 stream through cache
/// lines instead of chasing per-row heap allocations.
class Tableau {
 public:
  Tableau(const Problem& p, double eps) : eps_(eps) {
    const std::size_t n = p.num_variables();
    const std::size_t m = p.num_constraints();

    // Count slack/surplus columns, and which rows need an artificial: a
    // row whose (sign-normalized) slack enters with +1 can start basic on
    // its slack — only >=-like and equality rows need artificials. This
    // keeps phase 1 tiny for the mostly-<= problems this library builds.
    std::size_t num_slack = 0;
    std::size_t num_art = 0;
    std::vector<double> signs(m, 1.0);
    std::vector<char> needs_art(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      signs[i] = row.rhs < 0.0 ? -1.0 : 1.0;
      if (row.sense != Sense::kEqual) ++num_slack;
      const bool slack_is_basic =
          (row.sense == Sense::kLessEqual && signs[i] > 0.0) ||
          (row.sense == Sense::kGreaterEqual && signs[i] < 0.0);
      needs_art[i] = slack_is_basic ? 0 : 1;
      if (needs_art[i]) ++num_art;
    }

    n_ = n;
    slack_begin_ = n;
    art_begin_ = n + num_slack;
    cols_ = n + num_slack + num_art;
    rows_ = m;
    stride_ = cols_ + 1;

    a_.assign(rows_ * stride_, 0.0);
    basis_.assign(rows_, 0);
    dual_col_.assign(rows_, 0);
    row_sign_.reserve(rows_);
    row_slack_col_.reserve(rows_);
    slack_row_.assign(num_slack, 0);

    std::size_t slack = slack_begin_;
    std::size_t art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& prow = p.rows()[i];
      const double sign = signs[i];
      double* arow = row(i);
      for (const auto& [var, coeff] : prow.terms)
        arow[static_cast<std::size_t>(var)] = sign * coeff;
      arow[cols_] = sign * prow.rhs;
      std::size_t slack_col = cols_;  // sentinel: no slack (equality row)
      if (prow.sense == Sense::kLessEqual) {
        slack_col = slack++;
        arow[slack_col] = sign * 1.0;
      } else if (prow.sense == Sense::kGreaterEqual) {
        slack_col = slack++;
        arow[slack_col] = sign * -1.0;
      }
      row_slack_col_.push_back(slack_col);
      if (slack_col != cols_) slack_row_[slack_col - slack_begin_] = i;
      if (needs_art[i]) {
        // Identity column for the row; doubles as the dual probe.
        const std::size_t art_col = art++;
        arow[art_col] = 1.0;
        basis_[i] = art_col;
        dual_col_[i] = art_col;
      } else {
        // Slack coefficient is +1 here, so it is both a valid starting
        // basis column and an identity column for dual extraction.
        basis_[i] = slack_col;
        dual_col_[i] = slack_col;
      }
      row_sign_.push_back(sign);
    }
    in_basis_.assign(cols_, 0);
    for (std::size_t b : basis_) in_basis_[b] = 1;

    // Objective in "maximize" orientation.
    obj_.assign(cols_, 0.0);
    const double obj_sign = p.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) obj_[j] = obj_sign * p.objective_coeffs()[j];
    obj_sign_ = obj_sign;
  }

  Solution run(std::size_t max_pivots) {
    budget_ = max_pivots;
    // --- Phase 1: minimize the sum of artificials (maximize its negation).
    // Skipped entirely when no row needed one (the all-slack basis is
    // already feasible).
    if (art_begin_ < cols_) {
      std::vector<double> phase1(cols_, 0.0);
      for (std::size_t j = art_begin_; j < cols_; ++j) phase1[j] = -1.0;
      const LoopResult r = pivot_loop(phase1, /*allow_artificials=*/true);
      if (r == LoopResult::kLimit) return limit_solution();
      // Phase 1 is bounded below by zero, so an "unbounded" verdict can
      // only mean accumulated round-off broke the ratio test. Report
      // non-convergence instead of asserting: this engine is the fallback
      // of last resort and must not abort the process.
      if (r != LoopResult::kOptimal) return limit_solution();
      double phase1_value = 0.0;
      for (std::size_t i = 0; i < rows_; ++i)
        if (basis_[i] >= art_begin_) phase1_value -= row(i)[cols_];
      if (phase1_value < -eps_) return Solution{};
      drive_out_artificials();
    }
    return phase2();
  }

  /// Pivot into `warm` and run phase 2 from it, skipping phase 1. Returns
  /// false when the basis does not apply to this problem — wrong size,
  /// unknown entries, singular basis matrix, or a primal-infeasible
  /// starting point. The tableau is garbage afterwards; the caller must
  /// rebuild and run cold.
  bool run_warm(const Basis& warm, std::size_t max_pivots, Solution* out) {
    budget_ = max_pivots;
    if (warm.size() != rows_) return false;
    std::vector<std::size_t> target(rows_, cols_);
    std::vector<char> used(cols_, 0);
    for (std::size_t k = 0; k < rows_; ++k) {
      const BasisEntry& entry = warm[k];
      std::size_t c = cols_;
      if (entry.kind == BasisEntry::Kind::kStructural) {
        if (entry.index < 0 || static_cast<std::size_t>(entry.index) >= n_)
          return false;
        c = static_cast<std::size_t>(entry.index);
      } else {
        if (entry.index < 0 || static_cast<std::size_t>(entry.index) >= rows_)
          return false;
        c = row_slack_col_[static_cast<std::size_t>(entry.index)];
        if (c == cols_) return false;  // equality row: no slack to be basic
      }
      if (used[c]) return false;
      used[c] = 1;
      target[k] = c;
    }

    // Gaussian pivot-in: per target column, the largest-magnitude pivot
    // among rows not yet claimed. A near-zero best pivot means the basis
    // matrix is singular for this problem. These <= m deterministic pivots
    // do not count against the budget.
    std::vector<char> row_done(rows_, 0);
    for (std::size_t k = 0; k < rows_; ++k) {
      const std::size_t c = target[k];
      std::size_t best_row = rows_;
      double best_abs = 1e-7;
      const double* col = a_.data() + c;
      for (std::size_t i = 0; i < rows_; ++i, col += stride_) {
        if (!row_done[i] && std::abs(*col) > best_abs) {
          best_abs = std::abs(*col);
          best_row = i;
        }
      }
      if (best_row == rows_) return false;
      pivot(best_row, c);
      row_done[best_row] = 1;
    }

    // The warm basis must be primal feasible here (it always is when the
    // problem only gained columns since the basis was optimal). Tiny
    // negative rhs from re-pivoting round-off is clamped; anything larger
    // means a genuinely different problem.
    for (std::size_t i = 0; i < rows_; ++i)
      if (row(i)[cols_] < -1e-7) return false;
    for (std::size_t i = 0; i < rows_; ++i)
      if (row(i)[cols_] < 0.0) row(i)[cols_] = 0.0;
    *out = phase2();
    return true;
  }

 private:
  enum class LoopResult { kOptimal, kUnbounded, kLimit };

  double* row(std::size_t i) { return a_.data() + i * stride_; }
  const double* row(std::size_t i) const { return a_.data() + i * stride_; }

  static Solution limit_solution() {
    Solution solution;
    solution.status = Status::kIterationLimit;
    return solution;
  }

  /// Phase 2: the real objective; artificials may no longer enter.
  Solution phase2() {
    Solution solution;
    const LoopResult r = pivot_loop(obj_, /*allow_artificials=*/false);
    if (r == LoopResult::kLimit) return limit_solution();
    if (r == LoopResult::kUnbounded) {
      solution.status = Status::kUnbounded;
      return solution;
    }

    solution.status = Status::kOptimal;
    solution.values.assign(n_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < n_) solution.values[basis_[i]] = row(i)[cols_];
    }
    double obj_value = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj_value += obj_[j] * solution.values[j];
    solution.objective = obj_sign_ * obj_value;

    // Duals from each row's identity-like column (its artificial if one
    // was created, else its +1 slack): that column's phase-2 reduced cost
    // is 0 - y_i. Undo the row sign normalization and the min/max flip.
    solution.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
      solution.duals[i] = obj_sign_ * row_sign_[i] * -red_[dual_col_[i]];

    // Export the basis in the problem-level representation for warm
    // starts. A basic artificial (redundant row) has no such form; the
    // basis is then reported empty (not reusable).
    solution.basis.reserve(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::size_t b = basis_[i];
      if (b < n_) {
        solution.basis.push_back(
            {BasisEntry::Kind::kStructural, static_cast<int>(b)});
      } else if (b < art_begin_) {
        solution.basis.push_back(
            {BasisEntry::Kind::kSlack,
             static_cast<int>(slack_row_[b - slack_begin_])});
      } else {
        solution.basis.clear();
        break;
      }
    }
    return solution;
  }

  /// Core simplex loop.
  LoopResult pivot_loop(const std::vector<double>& c, bool allow_artificials) {
    // Maintain the reduced-cost row incrementally (full-tableau simplex):
    // red_[j] = c_j - c_B' * B^{-1} A_j, updated on every pivot. Built
    // row-by-row so the initialization streams over the contiguous buffer.
    red_.assign(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(cols_));
    for (std::size_t i = 0; i < rows_; ++i) {
      const double cb = c[basis_[i]];
      if (cb == 0.0) continue;
      const double* arow = row(i);
      for (std::size_t j = 0; j < cols_; ++j) red_[j] -= cb * arow[j];
    }

    for (std::size_t iter = 0;; ++iter) {
      // Dantzig's rule (steepest reduced cost) for speed; after a long
      // stall switch permanently to Bland's rule, whose anti-cycling
      // guarantee ensures termination on degenerate problems.
      const bool bland = iter >= kDantzigIters;
      std::size_t entering = cols_;
      double best_reduced = eps_;
      const std::size_t limit = allow_artificials ? cols_ : art_begin_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (red_[j] > best_reduced && !is_basic(j)) {
          entering = j;
          if (bland) break;  // first (lowest-index) improving column
          best_reduced = red_[j];
        }
      }
      if (entering == cols_) return LoopResult::kOptimal;

      // Ratio test; Bland tie-break on the smallest basic variable index.
      // One strided pass over the pivot column.
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      const double* col = a_.data() + entering;
      for (std::size_t i = 0; i < rows_; ++i, col += stride_) {
        if (*col > eps_) {
          const double ratio = row(i)[cols_] / *col;
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ &&
               (leaving == rows_ || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == rows_) return LoopResult::kUnbounded;

      if (budget_ == 0) return LoopResult::kLimit;
      --budget_;
      pivot(leaving, entering);
    }
  }

  bool is_basic(std::size_t col) const { return in_basis_[col] != 0; }

  void pivot(std::size_t prow_idx, std::size_t col) {
    // The pivot row is normalized in place, then every other row gets one
    // branch-free fused update pass; __restrict lets the compiler
    // vectorize the row updates (prow never aliases the updated row).
    double* const __restrict prow = row(prow_idx);
    const double p = prow[col];
    for (std::size_t j = 0; j <= cols_; ++j) prow[j] /= p;
    double* arow = a_.data();
    for (std::size_t i = 0; i < rows_; ++i, arow += stride_) {
      if (i == prow_idx) continue;
      const double factor = arow[col];
      if (factor == 0.0) continue;
      double* const __restrict dst = arow;
      for (std::size_t j = 0; j <= cols_; ++j) dst[j] -= factor * prow[j];
    }
    if (!red_.empty()) {
      const double factor = red_[col];
      if (factor != 0.0) {
        double* const __restrict red = red_.data();
        for (std::size_t j = 0; j < cols_; ++j) red[j] -= factor * prow[j];
      }
    }
    in_basis_[basis_[prow_idx]] = 0;
    in_basis_[col] = 1;
    basis_[prow_idx] = col;
  }

  /// After phase 1, pivot any artificial still basic (at level ~0) out of
  /// the basis; if its row has no eligible pivot the row is redundant and
  /// the artificial stays basic at zero (it is barred from re-entering).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < art_begin_) continue;
      MRWSN_ASSERT(std::abs(row(i)[cols_]) <= 1e-6,
                   "basic artificial with nonzero value after feasible phase 1");
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(row(i)[j]) > eps_ && !is_basic(j)) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  static constexpr std::size_t kDantzigIters = 20000;

  double eps_;
  double obj_sign_ = 1.0;
  std::size_t n_ = 0;           // original variables
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t cols_ = 0;        // total structural columns (excl. rhs)
  std::size_t rows_ = 0;
  std::size_t stride_ = 0;      // cols_ + 1 (rhs lives in the last column)
  std::size_t budget_ = 0;      // remaining pivots before kIterationLimit
  std::vector<double> a_;       // contiguous rows_ x stride_ tableau
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;  // membership flags mirroring basis_
  std::vector<double> row_sign_;  // +1/-1 rhs normalization per row
  std::vector<std::size_t> dual_col_;  // identity-like column per row
  std::vector<std::size_t> row_slack_col_;  // per row: slack column or cols_
  std::vector<std::size_t> slack_row_;      // per slack column: its row
  std::vector<double> obj_;  // maximize orientation over original columns
  std::vector<double> red_;  // reduced-cost row maintained by pivot()
};

/// The pre-flattening vector<vector<double>> tableau, retained verbatim as
/// the reference implementation for the parity suite and the before/after
/// microbenchmarks (see solve_reference).
class ReferenceTableau {
 public:
  ReferenceTableau(const Problem& p, double eps) : eps_(eps) {
    const std::size_t n = p.num_variables();
    const std::size_t m = p.num_constraints();

    std::size_t num_slack = 0;
    std::size_t num_art = 0;
    std::vector<double> signs(m, 1.0);
    std::vector<char> needs_art(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      signs[i] = row.rhs < 0.0 ? -1.0 : 1.0;
      if (row.sense != Sense::kEqual) ++num_slack;
      const bool slack_is_basic =
          (row.sense == Sense::kLessEqual && signs[i] > 0.0) ||
          (row.sense == Sense::kGreaterEqual && signs[i] < 0.0);
      needs_art[i] = slack_is_basic ? 0 : 1;
      if (needs_art[i]) ++num_art;
    }

    n_ = n;
    art_begin_ = n + num_slack;
    cols_ = n + num_slack + num_art;
    rows_ = m;

    a_.assign(rows_, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(rows_, 0);
    dual_col_.assign(rows_, 0);

    std::size_t slack = n;
    std::size_t art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      const double sign = signs[i];
      for (const auto& [var, coeff] : row.terms)
        a_[i][static_cast<std::size_t>(var)] = sign * coeff;
      a_[i][cols_] = sign * row.rhs;
      std::size_t slack_col = cols_;
      if (row.sense == Sense::kLessEqual) {
        slack_col = slack++;
        a_[i][slack_col] = sign * 1.0;
      } else if (row.sense == Sense::kGreaterEqual) {
        slack_col = slack++;
        a_[i][slack_col] = sign * -1.0;
      }
      if (needs_art[i]) {
        const std::size_t art_col = art++;
        a_[i][art_col] = 1.0;
        basis_[i] = art_col;
        dual_col_[i] = art_col;
      } else {
        basis_[i] = slack_col;
        dual_col_[i] = slack_col;
      }
      row_sign_.push_back(sign);
    }
    in_basis_.assign(cols_, 0);
    for (std::size_t b : basis_) in_basis_[b] = 1;

    obj_.assign(cols_, 0.0);
    const double obj_sign = p.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) obj_[j] = obj_sign * p.objective_coeffs()[j];
    obj_sign_ = obj_sign;
  }

  Solution run() {
    if (art_begin_ < cols_) {
      std::vector<double> phase1(cols_, 0.0);
      for (std::size_t j = art_begin_; j < cols_; ++j) phase1[j] = -1.0;
      const double phase1_value = optimize(phase1, /*allow_artificials=*/true);
      if (phase1_value < -eps_) return Solution{};
      drive_out_artificials();
    }

    Solution solution;
    if (!pivot_loop(obj_, /*allow_artificials=*/false)) {
      solution.status = Status::kUnbounded;
      return solution;
    }

    solution.status = Status::kOptimal;
    solution.values.assign(n_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < n_) solution.values[basis_[i]] = a_[i][cols_];
    }
    double obj_value = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj_value += obj_[j] * solution.values[j];
    solution.objective = obj_sign_ * obj_value;

    solution.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
      solution.duals[i] = obj_sign_ * row_sign_[i] * -red_[dual_col_[i]];
    return solution;
  }

 private:
  double optimize(const std::vector<double>& c, bool allow_artificials) {
    const bool unbounded = !pivot_loop(c, allow_artificials);
    MRWSN_ASSERT(!unbounded, "phase-1 objective cannot be unbounded");
    double value = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < c.size()) value += c[basis_[i]] * a_[i][cols_];
    }
    return value;
  }

  bool pivot_loop(const std::vector<double>& c, bool allow_artificials) {
    red_.assign(cols_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) {
      double reduced = c[j];
      for (std::size_t i = 0; i < rows_; ++i) {
        const double cb = c[basis_[i]];
        if (cb != 0.0) reduced -= cb * a_[i][j];
      }
      red_[j] = reduced;
    }

    for (std::size_t iter = 0; iter < kMaxIters; ++iter) {
      const bool bland = iter >= kDantzigIters;
      std::size_t entering = cols_;
      double best_reduced = eps_;
      const std::size_t limit = allow_artificials ? cols_ : art_begin_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (red_[j] > best_reduced && !is_basic(j)) {
          entering = j;
          if (bland) break;
          best_reduced = red_[j];
        }
      }
      if (entering == cols_) return true;

      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < rows_; ++i) {
        if (a_[i][entering] > eps_) {
          const double ratio = a_[i][cols_] / a_[i][entering];
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ &&
               (leaving == rows_ || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == rows_) return false;

      pivot(leaving, entering);
    }
    throw InvariantError("simplex exceeded the iteration limit (cycling?)");
  }

  bool is_basic(std::size_t col) const { return in_basis_[col] != 0; }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    for (double& v : a_[row]) v /= p;
    for (std::size_t i = 0; i < rows_; ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) a_[i][j] -= factor * a_[row][j];
    }
    if (!red_.empty()) {
      const double factor = red_[col];
      if (factor != 0.0)
        for (std::size_t j = 0; j < cols_; ++j) red_[j] -= factor * a_[row][j];
    }
    in_basis_[basis_[row]] = 0;
    in_basis_[col] = 1;
    basis_[row] = col;
  }

  void drive_out_artificials() {
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < art_begin_) continue;
      MRWSN_ASSERT(std::abs(a_[i][cols_]) <= 1e-6,
                   "basic artificial with nonzero value after feasible phase 1");
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(a_[i][j]) > eps_ && !is_basic(j)) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  static constexpr std::size_t kDantzigIters = 20000;
  static constexpr std::size_t kMaxIters = 400000;

  double eps_;
  double obj_sign_ = 1.0;
  std::size_t n_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;
  std::vector<double> row_sign_;
  std::vector<std::size_t> dual_col_;
  std::vector<double> obj_;
  std::vector<double> red_;
};

Solution solve_trivial(const Problem& problem, double eps) {
  // Degenerate but well-defined: feasible iff every constraint already
  // holds with an all-zero left-hand side.
  Solution s;
  s.status = Status::kOptimal;
  s.duals.assign(problem.num_constraints(), 0.0);
  for (const auto& row : problem.rows()) {
    const bool ok = (row.sense == Sense::kLessEqual && 0.0 <= row.rhs + eps) ||
                    (row.sense == Sense::kGreaterEqual && 0.0 >= row.rhs - eps) ||
                    (row.sense == Sense::kEqual && std::abs(row.rhs) <= eps);
    if (!ok) {
      s.status = Status::kInfeasible;
      break;
    }
  }
  return s;
}

}  // namespace

/// One product-form (eta) update of the basis factorization: after the
/// pivot at basis position `pos` with FTRAN'd entering column `w`,
/// B_new = B_old * E where E is the identity with column `pos` replaced by
/// `w`. FTRAN applies E^{-1} left-to-right after the LU solve; BTRAN
/// applies the transposed inverses right-to-left before it.
struct RevisedEta {
  std::size_t pos = 0;
  std::vector<double> w;
};

struct RevisedContext::State {
  std::size_t rows = 0;
  Basis basis;                    ///< the basis the factorization belongs to
  std::vector<double> row_sign;   ///< rhs sign normalization at save time:
                                  ///< B's entries depend on it, so a sign
                                  ///< flip (rhs crossing zero) voids the
                                  ///< factorization even for the same basis
  std::vector<double> lu;         ///< rows x rows packed L\U of B0
  std::vector<std::size_t> perm;  ///< LU row permutation
  std::vector<RevisedEta> etas;   ///< updates accumulated on top of lu
};

RevisedContext::RevisedContext() = default;
RevisedContext::~RevisedContext() = default;
RevisedContext::RevisedContext(RevisedContext&&) noexcept = default;
RevisedContext& RevisedContext::operator=(RevisedContext&&) noexcept = default;

void RevisedContext::reset() { state_.reset(); }

bool RevisedContext::empty() const { return state_ == nullptr; }

std::size_t RevisedContext::rows() const {
  return state_ != nullptr ? state_->rows : 0;
}

/// Sparse revised two-phase primal simplex. Shares the dense Tableau's
/// column layout (structural, slack, artificial columns; rows
/// sign-normalized to rhs >= 0) and pivot rules (Dantzig with a permanent
/// switch to Bland's anti-cycling rule after a stall, Bland tie-break in
/// the ratio test), so the two engines agree on status and optimum — the
/// differential fuzz harness holds them to that.
///
/// Instead of updating an m x cols tableau on every pivot, it keeps an LU
/// factorization (partial pivoting) of the m x m basis matrix plus an eta
/// file of product-form updates, FTRAN/BTRANs vectors through them, and
/// prices candidate columns through their sparse entries: per-pivot cost
/// O(m^2 + nnz(A)) instead of O(m * cols), which is what lets the
/// column-generation master scale to thousands of pooled columns. The
/// basis is refactorized every `refactor_interval` eta updates (and on
/// warm starts, unless a RevisedContext supplies the factorization of the
/// previous optimum, in which case pivoting-in is skipped entirely).
class RevisedSimplex {
 public:
  RevisedSimplex(const Problem& p, double eps, std::size_t refactor_interval)
      : eps_(eps), refactor_interval_(std::max<std::size_t>(1, refactor_interval)) {
    const std::size_t n = p.num_variables();
    const std::size_t m = p.num_constraints();

    std::size_t num_slack = 0;
    std::size_t num_art = 0;
    std::vector<double> signs(m, 1.0);
    std::vector<char> needs_art(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = p.rows()[i];
      signs[i] = row.rhs < 0.0 ? -1.0 : 1.0;
      if (row.sense != Sense::kEqual) ++num_slack;
      const bool slack_is_basic =
          (row.sense == Sense::kLessEqual && signs[i] > 0.0) ||
          (row.sense == Sense::kGreaterEqual && signs[i] < 0.0);
      needs_art[i] = slack_is_basic ? 0 : 1;
      if (needs_art[i]) ++num_art;
    }

    n_ = n;
    slack_begin_ = n;
    art_begin_ = n + num_slack;
    cols_ = n + num_slack + num_art;
    rows_ = m;

    row_sign_ = std::move(signs);
    row_slack_col_.assign(m, cols_);
    slack_row_.assign(num_slack, 0);
    b_.assign(m, 0.0);
    initial_head_.assign(m, 0);

    // Sparse columns (CSC): count, then fill. Structural columns carry the
    // sign-normalized row coefficients; slack and artificial columns are
    // singletons.
    col_start_.assign(cols_ + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      for (const auto& term : p.rows()[i].terms)
        ++col_start_[static_cast<std::size_t>(term.first) + 1];
    }
    std::size_t slack = slack_begin_;
    std::size_t art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& prow = p.rows()[i];
      if (prow.sense != Sense::kEqual) {
        row_slack_col_[i] = slack;
        slack_row_[slack - slack_begin_] = i;
        ++col_start_[slack + 1];
        ++slack;
      }
      if (needs_art[i]) {
        initial_head_[i] = art;
        ++col_start_[art + 1];
        ++art;
      } else {
        initial_head_[i] = row_slack_col_[i];
      }
    }
    for (std::size_t j = 0; j < cols_; ++j) col_start_[j + 1] += col_start_[j];
    entry_row_.assign(col_start_[cols_], 0);
    entry_val_.assign(col_start_[cols_], 0.0);
    std::vector<std::size_t> fill(col_start_.begin(), col_start_.end() - 1);
    art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& prow = p.rows()[i];
      const double sign = row_sign_[i];
      for (const auto& [var, coeff] : prow.terms) {
        const std::size_t j = static_cast<std::size_t>(var);
        entry_row_[fill[j]] = i;
        entry_val_[fill[j]] = sign * coeff;
        ++fill[j];
      }
      const std::size_t slack_col = row_slack_col_[i];
      if (slack_col != cols_) {
        entry_row_[fill[slack_col]] = i;
        entry_val_[fill[slack_col]] =
            sign * (prow.sense == Sense::kLessEqual ? 1.0 : -1.0);
        ++fill[slack_col];
      }
      if (needs_art[i]) {
        entry_row_[fill[art]] = i;
        entry_val_[fill[art]] = 1.0;
        ++art;
      }
      b_[i] = sign * prow.rhs;
    }

    obj_.assign(cols_, 0.0);
    const double obj_sign = p.objective() == Objective::kMaximize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) obj_[j] = obj_sign * p.objective_coeffs()[j];
    obj_sign_ = obj_sign;
  }

  /// Cold two-phase solve, mirroring Tableau::run.
  Solution run(std::size_t max_pivots) {
    budget_ = max_pivots;
    head_ = initial_head_;
    in_basis_.assign(cols_, 0);
    for (std::size_t c : head_) in_basis_[c] = 1;
    if (!refactorize()) {
      // The initial basis is the identity; this cannot fail.
      numerical_failure_ = true;
      return Solution{};
    }
    x_ = b_;

    if (art_begin_ < cols_) {
      std::vector<double> phase1(cols_, 0.0);
      for (std::size_t j = art_begin_; j < cols_; ++j) phase1[j] = -1.0;
      const LoopResult r = pivot_loop(phase1, /*allow_artificials=*/true);
      if (r == LoopResult::kNumericalFailure) return Solution{};
      if (r == LoopResult::kLimit) return limit_solution();
      // Phase 1 is bounded below by zero; "unbounded" here means the eta
      // file drifted. Flag a numerical failure so solve() falls back to
      // the dense engine for this instance.
      if (r != LoopResult::kOptimal) {
        numerical_failure_ = true;
        return Solution{};
      }
      double phase1_value = 0.0;
      for (std::size_t k = 0; k < rows_; ++k)
        if (head_[k] >= art_begin_) phase1_value -= x_[k];
      if (phase1_value < -eps_) return Solution{};
      drive_out_artificials();
      if (numerical_failure_) return Solution{};
    }
    return phase2();
  }

  /// Install `warm` and run phase 2 from it, skipping phase 1. When
  /// `context` holds the factorization of exactly this basis (the
  /// column-generation re-solve pattern), it is reused and no
  /// refactorization happens at all. Returns false when the basis does not
  /// apply (wrong size, unknown entries, singular, primal infeasible); the
  /// caller must rerun cold.
  bool run_warm(const Basis& warm, std::size_t max_pivots, Solution* out,
                RevisedContext* context) {
    budget_ = max_pivots;
    if (warm.size() != rows_) return false;
    head_.assign(rows_, cols_);
    in_basis_.assign(cols_, 0);
    for (std::size_t k = 0; k < rows_; ++k) {
      const BasisEntry& entry = warm[k];
      std::size_t c = cols_;
      if (entry.kind == BasisEntry::Kind::kStructural) {
        if (entry.index < 0 || static_cast<std::size_t>(entry.index) >= n_)
          return false;
        c = static_cast<std::size_t>(entry.index);
      } else {
        if (entry.index < 0 || static_cast<std::size_t>(entry.index) >= rows_)
          return false;
        c = row_slack_col_[static_cast<std::size_t>(entry.index)];
        if (c == cols_) return false;  // equality row: no slack to be basic
      }
      if (in_basis_[c]) return false;
      in_basis_[c] = 1;
      head_[k] = c;
    }

    // Context fast path: the previous optimum's factorization applies
    // verbatim when the basis entries match — appending columns changes
    // neither the rows nor any pre-existing column, so B is unchanged.
    bool reused = false;
    if (context != nullptr && context->state_ != nullptr) {
      const RevisedContext::State& state = *context->state_;
      if (state.rows == rows_ && state.basis == warm &&
          state.row_sign == row_sign_) {
        lu_ = state.lu;
        perm_ = state.perm;
        etas_ = state.etas;
        transpose_lu();
        reused = true;
      }
    }
    if (!reused && !refactorize()) return false;

    // The warm basis must be primal feasible here (it always is when the
    // problem only gained columns since the basis was optimal). Tiny
    // negative values from factorization round-off are clamped; anything
    // larger means a genuinely different problem.
    x_ = b_;
    ftran(&x_);
    for (std::size_t k = 0; k < rows_; ++k)
      if (x_[k] < -1e-7) return false;
    for (std::size_t k = 0; k < rows_; ++k)
      if (x_[k] < 0.0) x_[k] = 0.0;
    *out = phase2();
    return true;
  }

  /// Dual-simplex row re-solve: install `warm` — the optimal basis of this
  /// problem before it gained trailing rows and/or changed right-hand
  /// sides — complete it with the slacks of the trailing rows, audit dual
  /// feasibility, and run a dual simplex phase down to primal feasibility
  /// followed by primal phase 2 for cleanup and extraction. Completing
  /// with trailing slacks preserves dual feasibility by construction: the
  /// extended basis matrix is block triangular, so the old duals extend
  /// with zeros and every reduced cost is unchanged, and duals do not
  /// depend on b at all (rhs-only changes reuse the context factorization
  /// verbatim). Returns false when the basis does not apply — wrong size,
  /// unknown entries, a trailing equality row (no slack to complete with),
  /// singular, or not dual feasible — and the caller must rerun cold.
  /// Like run()/run_warm(), a mid-loop numerical failure returns true with
  /// numerical_failure() set.
  bool run_dual(const Basis& warm, std::size_t max_pivots, Solution* out,
                RevisedContext* context, SolveStats* stats,
                std::size_t dual_pivot_cap = 0) {
    budget_ = max_pivots;
    if (warm.empty() || warm.size() > rows_) {
      if (stats) stats->fallback_reason = Fallback::kDualRejected;
      return false;
    }
    head_.assign(rows_, cols_);
    in_basis_.assign(cols_, 0);
    for (std::size_t k = 0; k < warm.size(); ++k) {
      const BasisEntry& entry = warm[k];
      std::size_t c = cols_;
      if (entry.kind == BasisEntry::Kind::kStructural) {
        if (entry.index >= 0 && static_cast<std::size_t>(entry.index) < n_)
          c = static_cast<std::size_t>(entry.index);
      } else if (entry.index >= 0 &&
                 static_cast<std::size_t>(entry.index) < rows_) {
        c = row_slack_col_[static_cast<std::size_t>(entry.index)];
      }
      if (c == cols_ || in_basis_[c]) {
        if (stats) stats->fallback_reason = Fallback::kDualRejected;
        return false;
      }
      in_basis_[c] = 1;
      head_[k] = c;
    }
    for (std::size_t k = warm.size(); k < rows_; ++k) {
      const std::size_t c = row_slack_col_[k];
      if (c == cols_ || in_basis_[c]) {
        if (stats) stats->fallback_reason = Fallback::kDualRejected;
        return false;
      }
      in_basis_[c] = 1;
      head_[k] = c;
    }

    // Context fast path: a rhs-only change leaves the basis matrix
    // untouched, so the stored factorization applies verbatim. Appended
    // rows change B (the trailing slack block) and force one
    // refactorization — still far cheaper than a cold two-phase solve.
    bool reused = false;
    if (context != nullptr && context->state_ != nullptr) {
      const RevisedContext::State& state = *context->state_;
      if (state.rows == rows_ && warm.size() == rows_ &&
          state.basis == warm && state.row_sign == row_sign_) {
        lu_ = state.lu;
        perm_ = state.perm;
        etas_ = state.etas;
        transpose_lu();
        reused = true;
      }
    }
    if (!reused && !refactorize()) {
      if (stats) stats->fallback_reason = Fallback::kDualRejected;
      return false;
    }
    if (stats) stats->context_reused = reused;

    // Dual-feasibility audit: one BTRAN plus one pass over the nonzeros.
    // A basis carried across anything other than the append-rows /
    // change-rhs patterns (columns appended, objective changed) shows up
    // here as a positive reduced cost and is rejected to the cold path, so
    // a dual re-solve can never change results.
    std::vector<double> y(rows_);
    for (std::size_t k = 0; k < rows_; ++k) y[k] = obj_[head_[k]];
    btran(&y);
    for (std::size_t j = 0; j < art_begin_; ++j) {
      if (in_basis_[j]) continue;
      if (obj_[j] - column_dot(j, y) > kDualAuditTol) {
        if (stats) stats->fallback_reason = Fallback::kNotDualFeasible;
        return false;
      }
    }

    x_ = b_;
    ftran(&x_);
    if (stats) stats->dual_phase = true;
    // The dual phase runs under its own cap when the caller set one: past
    // it the phase is stalling on degeneracy, not converging, and the cold
    // path is cheaper. Whatever the cap leaves unspent returns to the
    // shared budget for phase 2.
    const std::size_t reserve =
        (dual_pivot_cap > 0 && dual_pivot_cap < budget_)
            ? budget_ - dual_pivot_cap
            : 0;
    budget_ -= reserve;
    const LoopResult r = dual_loop();
    budget_ += reserve;
    if (r == LoopResult::kNumericalFailure) return true;  // flag already set
    if (r == LoopResult::kLimit) {
      if (reserve > 0) {
        // The cap tripped before the global budget: abandon the re-solve.
        if (stats) stats->fallback_reason = Fallback::kDualStalled;
        return false;
      }
      *out = limit_solution();
      return true;
    }
    if (r == LoopResult::kInfeasible) {
      *out = Solution{};  // default status kInfeasible
      return true;
    }
    *out = phase2();
    return true;
  }

  std::size_t dual_pivots() const { return dual_pivots_; }
  /// Pivots consumed so far, given the budget the run started with.
  std::size_t pivots_spent(std::size_t max_pivots) const {
    return max_pivots - budget_;
  }

  /// Store the factorization of this solve's final basis in `context` for
  /// the next warm-started re-solve. Clears the context when the basis is
  /// not reusable.
  void save_context(RevisedContext* context, const Solution& solution) const {
    if (context == nullptr) return;
    if (solution.status != Status::kOptimal || solution.basis.size() != rows_) {
      context->reset();
      return;
    }
    auto state = std::make_unique<RevisedContext::State>();
    state->rows = rows_;
    state->basis = solution.basis;
    state->row_sign = row_sign_;
    state->lu = lu_;
    state->perm = perm_;
    state->etas = etas_;
    context->state_ = std::move(state);
  }

  bool numerical_failure() const { return numerical_failure_; }

 private:
  enum class LoopResult {
    kOptimal,
    kUnbounded,
    kInfeasible,  // dual loop only: a row became a Farkas certificate
    kLimit,
    kNumericalFailure,
  };

  static Solution limit_solution() {
    Solution solution;
    solution.status = Status::kIterationLimit;
    return solution;
  }

  /// Rebuild the LU factorization (partial pivoting) of the current basis
  /// and clear the eta file. Returns false on a (numerically) singular
  /// basis matrix.
  bool refactorize() {
    const std::size_t m = rows_;
    lu_.assign(m * m, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t c = head_[k];
      for (std::size_t e = col_start_[c]; e < col_start_[c + 1]; ++e)
        lu_[entry_row_[e] * m + k] = entry_val_[e];
    }
    perm_.resize(m);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});
    for (std::size_t k = 0; k < m; ++k) {
      std::size_t piv = k;
      double best = std::abs(lu_[k * m + k]);
      for (std::size_t i = k + 1; i < m; ++i) {
        const double a = std::abs(lu_[i * m + k]);
        if (a > best) {
          best = a;
          piv = i;
        }
      }
      if (best < kSingularTol) return false;
      if (piv != k) {
        for (std::size_t j = 0; j < m; ++j)
          std::swap(lu_[k * m + j], lu_[piv * m + j]);
        std::swap(perm_[k], perm_[piv]);
      }
      const double d = lu_[k * m + k];
      for (std::size_t i = k + 1; i < m; ++i) {
        const double f = lu_[i * m + k] / d;
        lu_[i * m + k] = f;
        if (f == 0.0) continue;
        for (std::size_t j = k + 1; j < m; ++j)
          lu_[i * m + j] -= f * lu_[k * m + j];
      }
    }
    transpose_lu();
    etas_.clear();
    return true;
  }

  /// FTRAN/BTRAN walk columns of L/U; keep a column-major copy so those
  /// inner loops are contiguous instead of stride-m (the stride-m walks
  /// were the dominant cost of warm re-solves — a cache miss per element).
  void transpose_lu() {
    const std::size_t m = rows_;
    lut_.resize(m * m);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) lut_[j * m + i] = lu_[i * m + j];
  }

  /// v := B^{-1} v. Input indexed by constraint row, output by basis
  /// position.
  void ftran(std::vector<double>* v) const {
    const std::size_t m = rows_;
    std::vector<double>& x = work_;
    x.resize(m);
    for (std::size_t i = 0; i < m; ++i) x[i] = (*v)[perm_[i]];
    for (std::size_t k = 0; k < m; ++k) {
      const double t = x[k];
      if (t == 0.0) continue;
      const double* col = &lut_[k * m];
      for (std::size_t i = k + 1; i < m; ++i) x[i] -= col[i] * t;
    }
    for (std::size_t k = m; k-- > 0;) {
      const double* col = &lut_[k * m];
      const double t = x[k] / col[k];
      x[k] = t;
      if (t == 0.0) continue;
      for (std::size_t i = 0; i < k; ++i) x[i] -= col[i] * t;
    }
    v->assign(x.begin(), x.end());
    for (const RevisedEta& eta : etas_) {
      const double t = (*v)[eta.pos] / eta.w[eta.pos];
      if (t != 0.0) {
        for (std::size_t i = 0; i < m; ++i) (*v)[i] -= eta.w[i] * t;
      }
      (*v)[eta.pos] = t;
    }
  }

  /// v := B^{-T} v (row-vector sense: solves y^T B = v^T). Input indexed
  /// by basis position, output by constraint row.
  void btran(std::vector<double>* v) const {
    const std::size_t m = rows_;
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const RevisedEta& eta = *it;
      double t = 0.0;
      for (std::size_t i = 0; i < m; ++i) t += (*v)[i] * eta.w[i];
      t -= (*v)[eta.pos] * eta.w[eta.pos];
      (*v)[eta.pos] = ((*v)[eta.pos] - t) / eta.w[eta.pos];
    }
    // B0^T y = v with B0 = P^T L U:  U^T z = v (forward), L^T u = z
    // (backward), y[perm[i]] = u[i].
    std::vector<double>& z = work_;
    z.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double* col = &lut_[i * m];
      double acc = (*v)[i];
      for (std::size_t k = 0; k < i; ++k) acc -= col[k] * z[k];
      z[i] = acc / col[i];
    }
    for (std::size_t i = m; i-- > 0;) {
      const double* col = &lut_[i * m];
      double acc = z[i];
      for (std::size_t k = i + 1; k < m; ++k) acc -= col[k] * z[k];
      z[i] = acc;
    }
    for (std::size_t i = 0; i < m; ++i) (*v)[perm_[i]] = z[i];
  }

  double column_dot(std::size_t col, const std::vector<double>& y) const {
    double acc = 0.0;
    for (std::size_t e = col_start_[col]; e < col_start_[col + 1]; ++e)
      acc += entry_val_[e] * y[entry_row_[e]];
    return acc;
  }

  void scatter_column(std::size_t col, std::vector<double>* v) const {
    v->assign(rows_, 0.0);
    for (std::size_t e = col_start_[col]; e < col_start_[col + 1]; ++e)
      (*v)[entry_row_[e]] = entry_val_[e];
  }

  /// Recompute the basic values from scratch (after a refactorization).
  void recompute_values() {
    x_ = b_;
    ftran(&x_);
    for (double& v : x_)
      if (v < 0.0 && v > -1e-7) v = 0.0;
  }

  /// Core revised simplex loop: same entering/leaving rules as the dense
  /// tableau (Dantzig, permanent Bland switch after a stall, Bland
  /// tie-break in the ratio test), reduced costs priced fresh from the
  /// duals every iteration.
  LoopResult pivot_loop(const std::vector<double>& c, bool allow_artificials) {
    const std::size_t limit = allow_artificials ? cols_ : art_begin_;
    std::vector<double> y(rows_);
    for (std::size_t iter = 0;; ++iter) {
      const bool bland = iter >= kDantzigIters;

      // Duals of the current basis: y^T = c_B^T B^{-1}.
      y.resize(rows_);
      for (std::size_t k = 0; k < rows_; ++k) y[k] = c[head_[k]];
      btran(&y);

      std::size_t entering = cols_;
      double best_reduced = eps_;
      if (bland) {
        for (std::size_t j = 0; j < limit; ++j) {
          if (in_basis_[j]) continue;
          if (c[j] - column_dot(j, y) > best_reduced) {
            entering = j;  // first (lowest-index) improving column
            break;
          }
        }
      } else {
        // Partial (rotating-window) pricing: price kPriceWindow candidates
        // starting where the last pivot left off and enter the best of the
        // first window that contains an improving column. Optimality is
        // only declared after a full wrap prices every column — same
        // certificate as a full Dantzig scan at a fraction of the cost,
        // since warm re-solves need a handful of pivots but each full scan
        // touches every nonzero of the matrix.
        std::size_t j = price_start_ < limit ? price_start_ : 0;
        for (std::size_t scanned = 0; scanned < limit;) {
          const std::size_t window_end =
              std::min(scanned + kPriceWindow, limit);
          for (; scanned < window_end; ++scanned) {
            if (!in_basis_[j]) {
              const double reduced = c[j] - column_dot(j, y);
              if (reduced > best_reduced) {
                entering = j;
                best_reduced = reduced;
              }
            }
            j = j + 1 == limit ? 0 : j + 1;
          }
          if (entering != cols_) break;
        }
        price_start_ = j;
      }
      if (entering == cols_) return LoopResult::kOptimal;

      std::vector<double> w;
      scatter_column(entering, &w);
      ftran(&w);

      // Ratio test; Bland tie-break on the smallest basic variable index.
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < rows_; ++k) {
        if (w[k] > eps_) {
          const double ratio = x_[k] / w[k];
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ &&
               (leaving == rows_ || head_[k] < head_[leaving]))) {
            best_ratio = ratio;
            leaving = k;
          }
        }
      }
      if (leaving == rows_) return LoopResult::kUnbounded;

      if (budget_ == 0) return LoopResult::kLimit;
      --budget_;

      const double theta = x_[leaving] / w[leaving];
      for (std::size_t k = 0; k < rows_; ++k) x_[k] -= theta * w[k];
      x_[leaving] = theta;
      in_basis_[head_[leaving]] = 0;
      head_[leaving] = entering;
      in_basis_[entering] = 1;
      etas_.push_back({leaving, std::move(w)});
      if (etas_.size() >= refactor_interval_) {
        if (!refactorize()) {
          numerical_failure_ = true;
          return LoopResult::kNumericalFailure;
        }
        recompute_values();
      }
    }
  }

  /// Dual simplex loop for run_dual: the basis is dual feasible (no
  /// improving reduced cost on the real objective) but possibly primal
  /// infeasible — negative basic values from rows appended or rhs
  /// tightened since the basis was optimal. Each iteration drops the
  /// most-negative basic value out of the basis and enters the column
  /// minimizing |reduced cost| / |alpha| over columns with alpha < 0 in
  /// the leaving row, which keeps every reduced cost sign-correct. Ties
  /// prefer the larger pivot magnitude for stability; after a long stall
  /// both choices switch permanently to Bland's smallest-index rule for
  /// termination. No infeasible row left => primal feasible (done); no
  /// eligible entering column => the leaving row of B^{-1}[A|b] reads
  /// x_B = bbar_r - sum(alpha_rj x_j) <= bbar_r < 0 for every x >= 0, a
  /// Farkas certificate of primal infeasibility.
  LoopResult dual_loop() {
    std::vector<double> y(rows_), rho(rows_), w;
    std::size_t stalled_retries = 0;
    for (std::size_t iter = 0;; ++iter) {
      const bool bland = iter >= kDantzigIters;

      std::size_t leaving = rows_;
      if (bland) {
        for (std::size_t k = 0; k < rows_; ++k) {
          if (x_[k] < -kDualPrimalTol &&
              (leaving == rows_ || head_[k] < head_[leaving]))
            leaving = k;
        }
      } else {
        double most = -kDualPrimalTol;
        for (std::size_t k = 0; k < rows_; ++k) {
          if (x_[k] < most) {
            most = x_[k];
            leaving = k;
          }
        }
      }
      if (leaving == rows_) {
        // Primal feasible up to the same tolerance run_warm accepts.
        for (double& v : x_)
          if (v < 0.0) v = 0.0;
        return LoopResult::kOptimal;
      }

      // rho = row `leaving` of B^{-1}; alpha_j = rho . A_j. Reduced costs
      // need the duals of the current basis as well.
      rho.assign(rows_, 0.0);
      rho[leaving] = 1.0;
      btran(&rho);
      for (std::size_t k = 0; k < rows_; ++k) y[k] = obj_[head_[k]];
      btran(&y);

      std::size_t entering = cols_;
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_alpha = 0.0;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (in_basis_[j]) continue;
        const double alpha = column_dot(j, rho);
        if (alpha >= -eps_) continue;
        double reduced = obj_[j] - column_dot(j, y);
        if (reduced > 0.0) reduced = 0.0;  // dual feasible up to round-off
        const double ratio = reduced / alpha;  // >= 0
        const bool better =
            ratio < best_ratio - eps_ ||
            (ratio < best_ratio + eps_ &&
             (entering == cols_ ||
              (bland ? j < entering : -alpha > best_alpha)));
        if (better) {
          best_ratio = ratio;
          best_alpha = -alpha;
          entering = j;
        }
      }
      if (entering == cols_) return LoopResult::kInfeasible;

      scatter_column(entering, &w);
      ftran(&w);
      if (w[leaving] >= -eps_) {
        // The eta file and rho disagree on the pivot element's sign:
        // refactorize once and retry the iteration; a repeat is a genuine
        // numerical failure.
        if (++stalled_retries > 1 || !refactorize()) {
          numerical_failure_ = true;
          return LoopResult::kNumericalFailure;
        }
        recompute_values();
        continue;
      }
      stalled_retries = 0;

      if (budget_ == 0) return LoopResult::kLimit;
      --budget_;
      ++dual_pivots_;

      const double theta = x_[leaving] / w[leaving];  // >= 0: both negative
      for (std::size_t k = 0; k < rows_; ++k) x_[k] -= theta * w[k];
      x_[leaving] = theta;
      in_basis_[head_[leaving]] = 0;
      head_[leaving] = entering;
      in_basis_[entering] = 1;
      etas_.push_back({leaving, std::move(w)});
      if (etas_.size() >= refactor_interval_) {
        if (!refactorize()) {
          numerical_failure_ = true;
          return LoopResult::kNumericalFailure;
        }
        recompute_values();
      }
    }
  }

  /// Phase 2 on the real objective plus solution extraction; artificials
  /// may no longer enter (they can linger basic at zero on redundant rows,
  /// exactly as in the dense path).
  Solution phase2() {
    Solution solution;
    const LoopResult r = pivot_loop(obj_, /*allow_artificials=*/false);
    if (r == LoopResult::kNumericalFailure) return solution;
    if (r == LoopResult::kLimit) return limit_solution();
    if (r == LoopResult::kUnbounded) {
      solution.status = Status::kUnbounded;
      return solution;
    }

    solution.status = Status::kOptimal;
    solution.values.assign(n_, 0.0);
    for (std::size_t k = 0; k < rows_; ++k)
      if (head_[k] < n_) solution.values[head_[k]] = x_[k];
    double obj_value = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj_value += obj_[j] * solution.values[j];
    solution.objective = obj_sign_ * obj_value;

    // Duals straight from BTRAN of the basic costs; undo the row sign
    // normalization and the min/max flip.
    std::vector<double> y(rows_);
    for (std::size_t k = 0; k < rows_; ++k) y[k] = obj_[head_[k]];
    btran(&y);
    solution.duals.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
      solution.duals[i] = obj_sign_ * row_sign_[i] * y[i];

    // Export the basis in the problem-level representation for warm
    // starts; a basic artificial (redundant row) has no such form and
    // makes the basis non-reusable, as in the dense path.
    solution.basis.reserve(rows_);
    for (std::size_t k = 0; k < rows_; ++k) {
      const std::size_t c = head_[k];
      if (c < n_) {
        solution.basis.push_back(
            {BasisEntry::Kind::kStructural, static_cast<int>(c)});
      } else if (c < art_begin_) {
        solution.basis.push_back(
            {BasisEntry::Kind::kSlack,
             static_cast<int>(slack_row_[c - slack_begin_])});
      } else {
        solution.basis.clear();
        break;
      }
    }
    return solution;
  }

  /// After phase 1, pivot any artificial still basic (at level ~0) out of
  /// the basis; if its row of B^{-1}A has no eligible entry the row is
  /// redundant and the artificial stays basic at zero (barred from
  /// re-entering).
  void drive_out_artificials() {
    std::vector<double> rho, w;
    for (std::size_t k = 0; k < rows_; ++k) {
      if (head_[k] < art_begin_) continue;
      MRWSN_ASSERT(std::abs(x_[k]) <= 1e-6,
                   "basic artificial with nonzero value after feasible phase 1");
      rho.assign(rows_, 0.0);
      rho[k] = 1.0;
      btran(&rho);  // row k of B^{-1}
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (in_basis_[j]) continue;
        if (std::abs(column_dot(j, rho)) <= eps_) continue;
        scatter_column(j, &w);
        ftran(&w);
        if (std::abs(w[k]) <= eps_) continue;  // eta round-off disagreed
        const double theta = x_[k] / w[k];
        for (std::size_t i = 0; i < rows_; ++i) x_[i] -= theta * w[i];
        x_[k] = theta;
        in_basis_[head_[k]] = 0;
        head_[k] = j;
        in_basis_[j] = 1;
        etas_.push_back({k, w});
        if (etas_.size() >= refactor_interval_) {
          if (!refactorize()) {
            numerical_failure_ = true;
            return;
          }
          recompute_values();
        }
        break;
      }
    }
  }

  static constexpr std::size_t kDantzigIters = 20000;
  static constexpr std::size_t kPriceWindow = 64;
  static constexpr double kSingularTol = 1e-9;
  // Primal values above -kDualPrimalTol count as feasible in the dual
  // loop — the same threshold run_warm and recompute_values clamp at, so
  // the two paths agree on what "feasible" means.
  static constexpr double kDualPrimalTol = 1e-7;
  // Entry audit for run_dual: reduced costs at a genuine previous optimum
  // are within solver tolerance of zero; anything clearly positive means
  // the basis was carried across an unsupported change.
  static constexpr double kDualAuditTol = 1e-6;

  double eps_;
  double obj_sign_ = 1.0;
  std::size_t n_ = 0;           // original variables
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t cols_ = 0;        // total structural columns
  std::size_t rows_ = 0;
  std::size_t refactor_interval_;
  std::size_t budget_ = 0;       // remaining pivots before kIterationLimit
  std::size_t price_start_ = 0;  // rotating partial-pricing cursor
  std::size_t dual_pivots_ = 0;  // pivots spent in dual_loop
  bool numerical_failure_ = false;

  std::vector<double> row_sign_;            // +1/-1 rhs normalization per row
  std::vector<std::size_t> row_slack_col_;  // per row: slack column or cols_
  std::vector<std::size_t> slack_row_;      // per slack column: its row
  std::vector<double> b_;                   // normalized rhs
  std::vector<double> obj_;                 // maximize-orientation costs
  std::vector<std::size_t> initial_head_;   // all-slack/artificial basis

  std::vector<std::size_t> col_start_;  // CSC offsets (cols_ + 1)
  std::vector<std::size_t> entry_row_;
  std::vector<double> entry_val_;

  std::vector<std::size_t> head_;  // basic column per basis position
  std::vector<char> in_basis_;
  std::vector<double> x_;          // basic values by position

  std::vector<double> lu_;            // rows_ x rows_ packed L\U of B0
  std::vector<double> lut_;           // column-major copy for FTRAN/BTRAN
  std::vector<std::size_t> perm_;     // LU row permutation
  std::vector<RevisedEta> etas_;      // product-form updates on top of lu_
  mutable std::vector<double> work_;  // FTRAN/BTRAN scratch
};

Solution solve(const Problem& problem, double eps) {
  SolveOptions options;
  options.eps = eps;
  return solve(problem, options);
}

Solution solve(const Problem& problem, const SolveOptions& options) {
  MRWSN_REQUIRE(options.eps > 0.0, "tolerance must be positive");
  SolveStats* const stats = options.stats;
  if (stats != nullptr) *stats = SolveStats{};
  // First cause wins: a later, coarser fallback never masks the reason the
  // fast path was abandoned in the first place.
  const auto note = [stats](Fallback reason) {
    if (stats != nullptr && stats->fallback_reason == Fallback::kNone)
      stats->fallback_reason = reason;
  };
  if (problem.num_variables() == 0) {
    if (stats != nullptr) stats->cold = true;
    return solve_trivial(problem, options.eps);
  }

  // A factorization cached for a different row count can never be reused;
  // unless the caller asked for a dual re-solve (the one path that still
  // exploits its basis), the context is stale — drop it eagerly instead of
  // letting it silently linger across row changes.
  if (!options.dual_resolve && options.context != nullptr &&
      !options.context->empty() &&
      options.context->rows() != problem.num_constraints()) {
    options.context->reset();
    note(Fallback::kStaleContextRows);
  }

  if (options.engine == Engine::kDense) {
    if (options.warm_start != nullptr && !options.warm_start->empty() &&
        !options.dual_resolve) {
      // Warm path: pivot straight into the previous basis and run phase 2.
      // Any failure to apply it falls through to a fresh cold tableau (the
      // warm attempt mutates its tableau, so it cannot be reused).
      Tableau tableau(problem, options.eps);
      Solution solution;
      if (tableau.run_warm(*options.warm_start, options.max_pivots, &solution))
        return solution;
      note(Fallback::kWarmRejected);
    }
    // The dense engine has no dual phase; a dual_resolve request lands
    // here only as the cold fallback of last resort.
    Tableau tableau(problem, options.eps);
    if (stats != nullptr) stats->cold = true;
    return tableau.run(options.max_pivots);
  }

  // Revised engine. A numerically singular refactorization mid-solve is
  // the one failure mode the eta-update scheme adds over the dense
  // tableau; it falls back to the dense engine rather than surfacing a
  // numerical artifact to the caller.
  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    RevisedSimplex simplex(problem, options.eps, options.refactor_interval);
    Solution solution;
    const bool claimed =
        options.dual_resolve
            ? simplex.run_dual(*options.warm_start, options.max_pivots,
                               &solution, options.context, stats,
                               options.dual_pivot_cap)
            : simplex.run_warm(*options.warm_start, options.max_pivots,
                               &solution, options.context);
    if (claimed) {
      if (!simplex.numerical_failure()) {
        if (stats != nullptr) {
          stats->dual_pivots = simplex.dual_pivots();
          stats->pivots = simplex.pivots_spent(options.max_pivots);
        }
        simplex.save_context(options.context, solution);
        return solution;
      }
      note(Fallback::kNumerical);
    } else if (simplex.numerical_failure()) {
      note(Fallback::kNumerical);
      SolveOptions dense = options;
      dense.engine = Engine::kDense;
      dense.stats = nullptr;  // keep the reason recorded above
      if (stats != nullptr) stats->cold = true;
      return solve(problem, dense);
    } else {
      note(options.dual_resolve ? Fallback::kDualRejected
                                : Fallback::kWarmRejected);
    }
  }
  RevisedSimplex simplex(problem, options.eps, options.refactor_interval);
  Solution solution = simplex.run(options.max_pivots);
  if (stats != nullptr) {
    stats->cold = true;
    stats->pivots = simplex.pivots_spent(options.max_pivots);
  }
  if (simplex.numerical_failure()) {
    note(Fallback::kNumerical);
    if (options.context != nullptr) options.context->reset();
    SolveOptions dense = options;
    dense.engine = Engine::kDense;
    dense.warm_start = nullptr;
    dense.stats = nullptr;
    return solve(problem, dense);
  }
  simplex.save_context(options.context, solution);
  return solution;
}

Solution solve_reference(const Problem& problem, double eps) {
  MRWSN_REQUIRE(eps > 0.0, "tolerance must be positive");
  if (problem.num_variables() == 0) return solve_trivial(problem, eps);
  ReferenceTableau tableau(problem, eps);
  return tableau.run();
}

}  // namespace mrwsn::lp
