#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

/// A small, self-contained dense linear-programming solver.
///
/// The paper's available-bandwidth model (Eq. 6) and its clique-based upper
/// bound (Eq. 9) are linear programs over schedule time shares. The problem
/// instances are small (tens of rows, up to a few thousand columns), so a
/// dense two-phase primal simplex with Bland's anti-cycling rule is exact
/// enough and fast enough; no external solver is used anywhere in the
/// repository.
namespace mrwsn::lp {

enum class Objective { kMaximize, kMinimize };
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

enum class Status {
  kOptimal,     ///< an optimal basic feasible solution was found
  kInfeasible,  ///< the constraint set admits no solution with x >= 0
  kUnbounded,   ///< the objective is unbounded over the feasible region
};

/// Identifier of a decision variable within a Problem. Variables are
/// implicitly constrained to be non-negative (x >= 0), which matches every
/// use in this repository (time shares and throughputs).
using VarId = int;

/// Builder for an LP instance.
class Problem {
 public:
  explicit Problem(Objective objective = Objective::kMaximize)
      : objective_(objective) {}

  /// Add a non-negative decision variable with the given objective
  /// coefficient. Returns its id (dense, starting at 0).
  VarId add_variable(double objective_coeff, std::string name = {});

  /// Add a linear constraint  sum(coeff_i * x_i)  <sense>  rhs.
  /// Terms may repeat a variable; coefficients are accumulated.
  void add_constraint(const std::vector<std::pair<VarId, double>>& terms,
                      Sense sense, double rhs);

  std::size_t num_variables() const { return objective_coeffs_.size(); }
  std::size_t num_constraints() const { return rows_.size(); }
  Objective objective() const { return objective_; }
  const std::string& variable_name(VarId id) const { return names_.at(static_cast<std::size_t>(id)); }

  /// One stored constraint row (dense coefficients over all variables).
  struct Row {
    std::vector<double> coeffs;
    Sense sense;
    double rhs;
  };

  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<double>& objective_coeffs() const { return objective_coeffs_; }

 private:
  Objective objective_;
  std::vector<double> objective_coeffs_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

/// Result of solving a Problem.
struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;        ///< valid when status == kOptimal
  std::vector<double> values;    ///< per-variable values; valid when kOptimal

  /// Dual value (shadow price) per constraint, in the order constraints
  /// were added: the derivative of the optimal objective with respect to
  /// that constraint's right-hand side. For a maximization, binding <=
  /// constraints have non-negative duals and binding >= constraints
  /// non-positive ones. Valid when kOptimal.
  std::vector<double> duals;

  bool optimal() const { return status == Status::kOptimal; }
  double value(VarId id) const { return values.at(static_cast<std::size_t>(id)); }
  double dual(std::size_t constraint) const { return duals.at(constraint); }
};

/// Solve with a two-phase dense simplex.
///
/// `eps` is the feasibility/optimality tolerance. The default is suited to
/// the well-scaled problems this library produces (coefficients within a
/// few orders of magnitude of 1).
Solution solve(const Problem& problem, double eps = 1e-9);

/// Solve with the pre-flattening vector-of-rows tableau, retained as the
/// reference implementation for the parity test-suite and the before/after
/// microbenchmarks. Same algorithm and pivot rules as solve(); only the
/// tableau storage differs.
Solution solve_reference(const Problem& problem, double eps = 1e-9);

}  // namespace mrwsn::lp
