#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

/// A small, self-contained linear-programming solver.
///
/// The paper's available-bandwidth model (Eq. 6) and its clique-based upper
/// bound (Eq. 9) are linear programs over schedule time shares: few rows
/// (one per universe link plus the airtime budget) but column pools that
/// grow into the thousands under column generation. The production engine
/// is a sparse revised two-phase primal simplex — columns stored sparse, an
/// LU factorization of the basis with product-form (eta-file) updates
/// between pivots, periodic refactorization — whose per-iteration cost
/// scales with the problem's nonzeros instead of the full tableau. The
/// dense full-tableau simplex is retained as Engine::kDense, the
/// differential reference the fuzz harness checks the revised method
/// against. No external solver is used anywhere in the repository.
namespace mrwsn::lp {

enum class Objective { kMaximize, kMinimize };
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

enum class Status {
  kOptimal,     ///< an optimal basic feasible solution was found
  kInfeasible,  ///< the constraint set admits no solution with x >= 0
  kUnbounded,   ///< the objective is unbounded over the feasible region
  kIterationLimit,  ///< the pivot budget of SolveOptions ran out first
};

/// Identifier of a decision variable within a Problem. Variables are
/// implicitly constrained to be non-negative (x >= 0), which matches every
/// use in this repository (time shares and throughputs).
using VarId = int;

/// Builder for an LP instance.
class Problem {
 public:
  explicit Problem(Objective objective = Objective::kMaximize)
      : objective_(objective) {}

  /// Add a non-negative decision variable with the given objective
  /// coefficient. Returns its id (dense, starting at 0).
  VarId add_variable(double objective_coeff, std::string name = {});

  /// Add a linear constraint  sum(coeff_i * x_i)  <sense>  rhs.
  /// Terms may repeat a variable; coefficients are accumulated.
  void add_constraint(const std::vector<std::pair<VarId, double>>& terms,
                      Sense sense, double rhs);

  /// Append one term to an existing row. `var` must be newer than every
  /// variable already in the row, which keeps the sorted-sparse invariant
  /// without a re-sort — exactly the column-generation pattern of growing
  /// a restricted master by one column in place instead of rebuilding it.
  void append_term(std::size_t row, VarId var, double coeff);

  /// Replace the right-hand side of an existing row (a master whose
  /// demands moved keeps its structure — and therefore any saved basis).
  void set_rhs(std::size_t row, double rhs);

  /// Set (insert, replace, or — with coeff 0 — erase) one coefficient of
  /// an existing row, keeping the sorted-sparse invariant. O(log nnz) to
  /// locate plus O(nnz) to shift on insert/erase. This is the in-place
  /// repair primitive for topology churn: a retired column is zeroed out
  /// of the rows it touches instead of rebuilding the whole master.
  void set_term(std::size_t row, VarId var, double coeff);

  /// Erase `var`'s coefficient from an existing row (no-op when absent).
  void remove_term(std::size_t row, VarId var);

  /// Replace a variable's objective coefficient in place. Retiring a
  /// master column = remove its terms from every row it touches and set
  /// its cost to the retired sentinel (a value that can never price in).
  void set_objective_coeff(VarId var, double objective_coeff);

  std::size_t num_variables() const { return objective_coeffs_.size(); }
  std::size_t num_constraints() const { return rows_.size(); }
  Objective objective() const { return objective_; }
  /// The variable's name; anonymous variables read back as "x<id>".
  std::string variable_name(VarId id) const {
    const std::string& name = names_.at(static_cast<std::size_t>(id));
    return name.empty() ? "x" + std::to_string(id) : name;
  }

  /// One stored constraint row. Coefficients are kept sparse — sorted by
  /// variable id, duplicates merged, exact zeros dropped — so building a
  /// solver matrix costs O(nnz) rather than O(num_variables) per row, and
  /// appending columns to a column-generation master never touches
  /// existing rows.
  struct Row {
    std::vector<std::pair<VarId, double>> terms;
    Sense sense;
    double rhs;

    /// Coefficient of `var` in this row (0 when absent). Binary search;
    /// meant for tests and spot checks, not solver inner loops.
    double coeff(VarId var) const {
      const auto it = std::lower_bound(
          terms.begin(), terms.end(), var,
          [](const std::pair<VarId, double>& t, VarId v) { return t.first < v; });
      return it != terms.end() && it->first == var ? it->second : 0.0;
    }
  };

  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<double>& objective_coeffs() const { return objective_coeffs_; }

 private:
  Objective objective_;
  std::vector<double> objective_coeffs_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

/// One basis slot: which variable is basic in one constraint row. The
/// entry is expressed against the Problem — a structural VarId or "the
/// slack of constraint i" — rather than internal tableau columns, so a
/// basis stays meaningful after further variables are appended to the
/// problem. That is the contract column generation relies on: the optimal
/// basis of the previous restricted master warm-starts the next one after
/// new columns arrive.
struct BasisEntry {
  enum class Kind : std::uint8_t { kStructural, kSlack };
  Kind kind = Kind::kSlack;
  int index = 0;  ///< VarId for kStructural; constraint index for kSlack

  friend bool operator==(const BasisEntry&, const BasisEntry&) = default;
};

/// One entry per constraint, in the order constraints were added. Empty
/// when no reusable basis exists (e.g. a redundant row kept an artificial
/// basic).
using Basis = std::vector<BasisEntry>;

/// Which simplex implementation solve() runs.
enum class Engine {
  kRevised,  ///< sparse revised simplex (LU basis + eta-file updates)
  kDense,    ///< dense full-tableau simplex (the differential reference)
};

/// Opaque cross-solve state of the revised engine: the LU factorization
/// (plus eta file) of the last optimal basis and the basis it belongs to.
/// Pass the same context to a chain of warm-started re-solves of a growing
/// problem (the column-generation master pattern: identical rows, columns
/// only appended) and the solver reuses the factorization instead of
/// refactorizing the warm basis from scratch. A context never changes
/// results — it is bypassed whenever it does not exactly match the
/// requested warm basis and row count. When the problem's row count has
/// changed since the factorization was stored, solve() drops the context
/// eagerly unless the caller requested a dual re-solve
/// (SolveOptions::dual_resolve), the one path that can still exploit it.
class RevisedContext {
 public:
  RevisedContext();
  ~RevisedContext();
  RevisedContext(RevisedContext&&) noexcept;
  RevisedContext& operator=(RevisedContext&&) noexcept;
  RevisedContext(const RevisedContext&) = delete;
  RevisedContext& operator=(const RevisedContext&) = delete;

  /// Drop the cached factorization (e.g. when the constraint rows change).
  void reset();

  /// True when no factorization is cached.
  bool empty() const;

  /// Row count of the problem the cached factorization belongs to
  /// (0 when empty).
  std::size_t rows() const;

 private:
  friend class RevisedSimplex;
  struct State;
  std::unique_ptr<State> state_;
};

/// Why solve() abandoned the requested warm/dual fast path (first cause
/// wins when several apply). kNone means the fast path — or a plain cold
/// solve, when none was requested — ran to completion.
enum class Fallback : std::uint8_t {
  kNone = 0,
  /// The context's factorization belonged to a different row count and no
  /// dual re-solve was requested: the context was invalidated and the
  /// solve proceeded without it.
  kStaleContextRows,
  /// The primal warm basis did not apply (wrong size, unknown entries,
  /// singular, or primal infeasible) and the solve went cold.
  kWarmRejected,
  /// The dual re-solve basis did not apply structurally (wrong size,
  /// unknown entries, trailing equality row with no slack, or singular).
  kDualRejected,
  /// The dual re-solve basis failed the dual-feasibility audit — it is not
  /// the optimal basis of a rows-appended/rhs-changed variant of this
  /// problem (e.g. columns or the objective changed too).
  kNotDualFeasible,
  /// The revised engine failed numerically and the dense engine re-solved
  /// the instance cold.
  kNumerical,
  /// The dual phase of a dual re-solve exceeded SolveOptions::
  /// dual_pivot_cap (a degenerate stall, not progress) and the solve went
  /// cold instead.
  kDualStalled,
};

/// Optional per-solve telemetry, filled in when SolveOptions::stats is
/// set. Callers batching thousands of re-solves aggregate these to see
/// how often the warm paths actually held.
struct SolveStats {
  Fallback fallback_reason = Fallback::kNone;
  bool dual_phase = false;      ///< a dual simplex phase ran
  bool context_reused = false;  ///< factorization taken from RevisedContext
  bool cold = false;            ///< a cold two-phase solve ran
  std::size_t dual_pivots = 0;  ///< pivots spent in the dual phase
  std::size_t pivots = 0;       ///< total pivots spent (all phases)
};

/// Knobs for solve(). The defaults reproduce the classic solve() behavior
/// apart from the iteration limit, which now reports kIterationLimit
/// instead of throwing.
struct SolveOptions {
  /// Feasibility/optimality tolerance.
  double eps = 1e-9;
  /// Total pivot budget across both phases; exhausted => kIterationLimit.
  std::size_t max_pivots = 400000;
  /// Optional starting basis, typically Solution::basis from a previous
  /// solve of a problem with the same constraints and a subset of the
  /// variables. When it applies (non-singular and primal feasible) phase 1
  /// is skipped entirely; otherwise the solver silently falls back to the
  /// cold two-phase path.
  const Basis* warm_start = nullptr;
  /// Simplex implementation. kRevised is the production engine; kDense is
  /// the retained full-tableau reference (the revised engine also falls
  /// back to it on the rare numerically singular refactorization).
  Engine engine = Engine::kRevised;
  /// Revised engine: refactorize the basis after this many eta updates.
  /// Smaller values trade pivot speed for numerical hygiene.
  std::size_t refactor_interval = 64;
  /// Revised engine: optional cross-solve factorization cache (see
  /// RevisedContext). Ignored by the dense engine.
  RevisedContext* context = nullptr;
  /// Dual-simplex row re-solve (revised engine only). Treat `warm_start`
  /// as the optimal basis of this problem *before* it gained trailing rows
  /// and/or changed right-hand sides: the basis is completed with the
  /// slacks of the trailing rows (which keeps it dual feasible — the
  /// extended basis matrix is block triangular, so the old duals extend
  /// with zeros and no reduced cost moves; duals never depend on the rhs)
  /// and a dual simplex phase restores primal feasibility from the
  /// retained factorization instead of re-solving cold. The basis is
  /// audited for dual feasibility on entry and anything else is rejected
  /// to the cold path, so results never change. With only x >= 0 bounds in
  /// this library (no finite uppers), the bound-flipping dual ratio test
  /// degenerates to the standard one. The dense engine has no dual phase;
  /// on numerical failure the instance falls back to a cold dense solve.
  bool dual_resolve = false;
  /// Pivot cap for the dual phase of a dual re-solve (0 = bounded only by
  /// max_pivots). A genuine rows-appended/rhs-changed re-solve lands
  /// within a few pivots; on dual-degenerate masters the dual phase can
  /// instead grind through an enormous stalled pivot sequence that a cold
  /// solve would beat by orders of magnitude. When the cap trips, the
  /// re-solve is abandoned (Fallback::kDualStalled) and the solve runs
  /// cold — results never change, only the path taken.
  std::size_t dual_pivot_cap = 0;
  /// Optional per-solve telemetry sink; reset at entry on every solve().
  SolveStats* stats = nullptr;
};

/// Result of solving a Problem.
struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;        ///< valid when status == kOptimal
  std::vector<double> values;    ///< per-variable values; valid when kOptimal

  /// The optimal basis (one entry per constraint), for warm-starting a
  /// re-solve after columns are appended. Empty when not reusable. Valid
  /// when kOptimal.
  Basis basis;

  /// Dual value (shadow price) per constraint, in the order constraints
  /// were added: the derivative of the optimal objective with respect to
  /// that constraint's right-hand side. For a maximization, binding <=
  /// constraints have non-negative duals and binding >= constraints
  /// non-positive ones. Valid when kOptimal.
  std::vector<double> duals;

  bool optimal() const { return status == Status::kOptimal; }
  double value(VarId id) const { return values.at(static_cast<std::size_t>(id)); }
  double dual(std::size_t constraint) const { return duals.at(constraint); }
};

/// Solve with a two-phase primal simplex (the revised engine by default).
///
/// `eps` is the feasibility/optimality tolerance. The default is suited to
/// the well-scaled problems this library produces (coefficients within a
/// few orders of magnitude of 1).
Solution solve(const Problem& problem, double eps = 1e-9);

/// Solve with explicit options (tolerance, pivot budget, warm-start basis).
Solution solve(const Problem& problem, const SolveOptions& options);

/// Solve with the pre-flattening vector-of-rows tableau, retained as the
/// reference implementation for the parity test-suite and the before/after
/// microbenchmarks. Same algorithm and pivot rules as solve(); only the
/// tableau storage differs.
Solution solve_reference(const Problem& problem, double eps = 1e-9);

}  // namespace mrwsn::lp
